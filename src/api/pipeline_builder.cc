// Copyright 2026 The PLDP Authors.

#include "api/pipeline_builder.h"

#include <atomic>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "event/symbol_table.h"
#include "ppm/factory.h"

namespace pldp {
namespace {

std::atomic<uint64_t> g_next_builder_uid{1};

size_t ResolveShardBudget(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

std::string SpecKeyId(const CorrelationKeySpec& spec) {
  switch (spec.kind) {
    case CorrelationKeySpec::Kind::kGlobal:
      return "global";
    case CorrelationKeySpec::Kind::kSubject:
      return "subject";
    case CorrelationKeySpec::Kind::kEventType:
      return "event-type";
    case CorrelationKeySpec::Kind::kAttribute:
      return "attr:" + spec.attribute;
  }
  return "global";
}

}  // namespace

// ---------------------------------------------------------------------------
// CorrelationKey

CorrelationKey CorrelationKey::Auto() { return CorrelationKey(); }

CorrelationKey CorrelationKey::Global() {
  CorrelationKey key;
  key.mode_ = Mode::kSpec;
  key.spec_ = CorrelationKeySpec::Global();
  return key;
}

CorrelationKey CorrelationKey::ByEventType() {
  CorrelationKey key;
  key.mode_ = Mode::kSpec;
  key.spec_ = CorrelationKeySpec::ByEventType();
  return key;
}

CorrelationKey CorrelationKey::ByAttribute(std::string attribute) {
  CorrelationKey key;
  key.mode_ = Mode::kSpec;
  key.spec_ = CorrelationKeySpec::ByAttribute(std::move(attribute));
  return key;
}

CorrelationKey CorrelationKey::Custom(std::string name, CorrelationKeyFn fn) {
  CorrelationKey key;
  key.mode_ = Mode::kCustom;
  key.custom_name_ = std::move(name);
  key.custom_fn_ = std::move(fn);
  return key;
}

// ---------------------------------------------------------------------------
// Query handles

QueryHandle& QueryHandle::OnDetection(std::function<void(Timestamp)> callback) {
  if (builder_ != nullptr && rep_.valid()) {
    builder_->SetPlainCallback(rep_.index, std::move(callback));
  }
  return *this;
}

CrossQueryHandle& CrossQueryHandle::OnDetection(
    std::function<void(Timestamp)> callback) {
  if (builder_ != nullptr && rep_.valid()) {
    builder_->SetCrossCallback(rep_.index, std::move(callback));
  }
  return *this;
}

// ---------------------------------------------------------------------------
// PipelinePlan

std::string PipelinePlan::Describe() const {
  std::string out;
  if (plain_queries > 0 || !cross_groups.empty()) {
    if (sequential) {
      out += StrFormat(
          "plain/cross lane: sequential in-process engine (%zu plain, ",
          plain_queries);
    } else {
      out += StrFormat("plain/cross lane: %zu shards (%zu plain, ",
                       shard_count, plain_queries);
    }
    size_t cross_total = 0;
    for (const CrossGroupPlan& g : cross_groups) cross_total += g.query_count;
    out += StrFormat("%zu cross)\n", cross_total);
    for (const CrossGroupPlan& g : cross_groups) {
      out += StrFormat("  lane-group '%s': %zu queries, %zu merge shards\n",
                       g.key_id.c_str(), g.query_count, g.merge_shards);
    }
  }
  if (has_private) {
    out += StrFormat(
        "private lane: %zu shards (%zu target queries, %zu cross)\n",
        shard_count, private_queries, private_cross_queries);
  }
  if (ingest_producers > 1) {
    out += StrFormat("ingest: %zu MPSC producer handles\n", ingest_producers);
  }
  if (pin_threads) {
    out += "affinity: workers pinned round-robin to cores\n";
  }
  if (overload_policy != OverloadPolicy::kBlock) {
    out += StrFormat("overload policy: %s\n",
                     OverloadPolicyName(overload_policy));
  }
  if (reorder_capacity > 0) {
    out += StrFormat("exchange reorder credits: %zu per lane\n",
                     reorder_capacity);
  }
  if (out.empty()) out = "empty plan\n";
  return out;
}

// ---------------------------------------------------------------------------
// PipelineBuilder

PipelineBuilder::PipelineBuilder()
    // order: relaxed; only uniqueness of the ticket matters.
    : uid_(g_next_builder_uid.fetch_add(1, std::memory_order_relaxed)) {}

PipelineBuilder& PipelineBuilder::WithShards(size_t shard_budget) {
  shard_budget_ = shard_budget;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithCrossShards(size_t merge_shards) {
  cross_shards_ = merge_shards;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithQueueCapacity(size_t capacity) {
  queue_capacity_ = capacity;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithExchangeCapacity(size_t lane_capacity) {
  exchange_capacity_ = lane_capacity;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithReorderCapacity(
    size_t credits_per_lane) {
  reorder_capacity_ = credits_per_lane;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithOverloadPolicy(OverloadPolicy policy,
                                                     size_t pending_capacity) {
  overload_.policy = policy;
  overload_.pending_capacity = pending_capacity;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithSeed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithIngestProducers(size_t producers) {
  ingest_producers_ = producers == 0 ? 1 : producers;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithCoreAffinity(size_t max_cores) {
  pin_threads_ = true;
  affinity_cores_ = max_cores;
  return *this;
}

PipelineBuilder& PipelineBuilder::EnableMetrics(bool enabled) {
  metrics_enabled_ = enabled;
  return *this;
}

void PipelineBuilder::SetPlainCallback(size_t index,
                                       std::function<void(Timestamp)> cb) {
  if (built_ || index >= plain_.size()) return;
  plain_[index].callback = std::move(cb);
}

void PipelineBuilder::SetCrossCallback(size_t index,
                                       std::function<void(Timestamp)> cb) {
  if (built_ || index >= cross_.size()) return;
  cross_[index].callback = std::move(cb);
}

PipelineBuilder& PipelineBuilder::WithPrivacyWindow(Timestamp size,
                                                    Timestamp origin) {
  window_size_ = size;
  window_origin_ = origin;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithEpsilon(double epsilon) {
  epsilon_ = epsilon;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithMechanism(const std::string& name) {
  mechanism_factory_ = NamedMechanismFactory(name);
  return *this;
}

PipelineBuilder& PipelineBuilder::WithMechanismFactory(
    MechanismFactory factory) {
  mechanism_factory_ = std::move(factory);
  return *this;
}

PipelineBuilder& PipelineBuilder::WithAlpha(double alpha) {
  alpha_ = alpha;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithHistory(std::vector<Window> history) {
  history_ = std::move(history);
  return *this;
}

EventTypeId PipelineBuilder::InternEventType(const std::string& name) {
  for (size_t i = 0; i < event_type_names_.size(); ++i) {
    if (event_type_names_[i] == name) return static_cast<EventTypeId>(i);
  }
  event_type_names_.push_back(name);
  return static_cast<EventTypeId>(event_type_names_.size() - 1);
}

void PipelineBuilder::LatchError(Status status) {
  if (error_.ok() && !status.ok()) error_ = std::move(status);
}

QueryHandle PipelineBuilder::AddQuery(StatusOr<Pattern> pattern,
                                      Timestamp window) {
  QueryHandle handle;
  handle.rep_.builder_uid = uid_;
  handle.builder_ = this;
  if (!pattern.ok()) {
    LatchError(pattern.status());
    return handle;
  }
  PlainDecl decl;
  decl.pattern = std::move(pattern).value();
  decl.window = window;
  plain_.push_back(std::move(decl));
  handle.rep_.index = plain_.size() - 1;
  return handle;
}

CrossQueryHandle PipelineBuilder::AddCrossQuery(StatusOr<Pattern> pattern,
                                                Timestamp window,
                                                CorrelationKey key) {
  CrossQueryHandle handle;
  handle.rep_.builder_uid = uid_;
  handle.builder_ = this;
  if (!pattern.ok()) {
    LatchError(pattern.status());
    return handle;
  }
  CrossDecl decl;
  decl.pattern = std::move(pattern).value();
  decl.window = window;
  decl.key = std::move(key);
  cross_.push_back(std::move(decl));
  handle.rep_.index = cross_.size() - 1;
  return handle;
}

PipelineBuilder& PipelineBuilder::AddPrivatePattern(StatusOr<Pattern> pattern) {
  if (!pattern.ok()) {
    LatchError(pattern.status());
    return *this;
  }
  private_patterns_.push_back(std::move(pattern).value());
  return *this;
}

PrivateQueryHandle PipelineBuilder::AddPrivateQuery(const std::string& name,
                                                    StatusOr<Pattern> pattern) {
  PrivateQueryHandle handle;
  handle.rep_.builder_uid = uid_;
  if (!pattern.ok()) {
    LatchError(pattern.status());
    return handle;
  }
  PrivateDecl decl;
  decl.name = name;
  decl.pattern = std::move(pattern).value();
  private_queries_.push_back(std::move(decl));
  handle.rep_.index = private_queries_.size() - 1;
  return handle;
}

PrivateCrossQueryHandle PipelineBuilder::AddPrivateCrossQuery(
    const std::string& name, StatusOr<Pattern> pattern, Timestamp window) {
  PrivateCrossQueryHandle handle;
  handle.rep_.builder_uid = uid_;
  if (!pattern.ok()) {
    LatchError(pattern.status());
    return handle;
  }
  PrivateCrossDecl decl;
  decl.name = name;
  decl.pattern = std::move(pattern).value();
  decl.window = window;
  private_cross_.push_back(std::move(decl));
  handle.rep_.index = private_cross_.size() - 1;
  return handle;
}

StatusOr<std::pair<std::string, CorrelationKeyFn>> PipelineBuilder::ResolveKey(
    const CorrelationKey& key, const Pattern& pattern) const {
  switch (key.mode_) {
    case CorrelationKey::Mode::kAuto: {
      PLDP_ASSIGN_OR_RETURN(CorrelationKeySpec spec,
                            SuggestCorrelationSpec({pattern}));
      PLDP_ASSIGN_OR_RETURN(CorrelationKeyFn fn, MakeCorrelationKeyFn(spec));
      return std::make_pair(SpecKeyId(spec), std::move(fn));
    }
    case CorrelationKey::Mode::kSpec: {
      PLDP_ASSIGN_OR_RETURN(CorrelationKeyFn fn,
                            MakeCorrelationKeyFn(key.spec_));
      return std::make_pair(SpecKeyId(key.spec_), std::move(fn));
    }
    case CorrelationKey::Mode::kCustom: {
      if (!key.custom_fn_) {
        return Status::InvalidArgument("custom correlation key '" +
                                       key.custom_name_ +
                                       "' has a null extractor");
      }
      return std::make_pair("custom:" + key.custom_name_, key.custom_fn_);
    }
  }
  return Status::Internal("unreachable correlation key mode");
}

StatusOr<std::unique_ptr<Pipeline>> PipelineBuilder::Build() {
  if (built_) {
    return Status::FailedPrecondition(
        "PipelineBuilder is single-use; Build() was already called");
  }
  built_ = true;
  PLDP_RETURN_IF_ERROR(error_);

  const bool has_private =
      !private_queries_.empty() || !private_cross_.empty();
  if (plain_.empty() && cross_.empty() && !has_private) {
    return Status::InvalidArgument("no queries declared");
  }
  if (!private_patterns_.empty() && !has_private) {
    return Status::InvalidArgument(
        "private patterns declared but no private queries; add "
        "AddPrivateQuery/AddPrivateCrossQuery or drop the patterns");
  }
  if (has_private && private_queries_.empty()) {
    return Status::InvalidArgument(
        "private cross queries need at least one AddPrivateQuery target "
        "(the mechanism protects per-subject answers)");
  }
  // Cheap private-lane configuration checks come before any lane spins up
  // worker threads, so a config mistake is side-effect-free.
  if (has_private) {
    if (!mechanism_factory_) {
      return Status::InvalidArgument(
          "private queries need a mechanism: call WithMechanism(name) or "
          "WithMechanismFactory(factory)");
    }
    if (window_size_ <= 0) {
      return Status::InvalidArgument(
          "private queries need WithPrivacyWindow(size > 0)");
    }
    if (private_patterns_.empty()) {
      return Status::InvalidArgument(
          "private queries need at least one AddPrivatePattern (what the "
          "mechanism protects)");
    }
  }
  if (ingest_producers_ > 1) {
    if (has_private) {
      return Status::InvalidArgument(
          "WithIngestProducers(>1) is incompatible with private queries: "
          "the private lane's ingest contract is single-producer");
    }
    if (overload_.policy != OverloadPolicy::kBlock) {
      return Status::InvalidArgument(
          "WithIngestProducers(>1) requires the blocking overload policy "
          "(the admission/shedding layer is single-producer)");
    }
  }

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->builder_uid_ = uid_;
  if (metrics_enabled_) {
    pipeline->metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
  PipelinePlan& plan = pipeline->plan_;
  plan.shard_count = ResolveShardBudget(shard_budget_);
  plan.plain_queries = plain_.size();
  plan.has_private = has_private;
  plan.private_queries = private_queries_.size();
  plan.private_cross_queries = private_cross_.size();
  plan.reorder_capacity = reorder_capacity_;
  plan.ingest_producers = ingest_producers_;
  plan.pin_threads = pin_threads_;
  // The sequential plan has no queues, so the overload policy is moot
  // there; the plan records kBlock to say "nothing will ever shed".
  plan.overload_policy =
      plan.shard_count == 1 && !has_private && ingest_producers_ <= 1
          ? OverloadPolicy::kBlock
          : overload_.policy;

  // Resolve every cross query's correlation key up front: the planner
  // dedupes equal keys into shared lane-groups and validates the rest.
  struct ResolvedCross {
    std::string key_id;
    CorrelationKeyFn fn;
  };
  std::vector<ResolvedCross> resolved;
  resolved.reserve(cross_.size());
  for (const CrossDecl& decl : cross_) {
    PLDP_ASSIGN_OR_RETURN(auto key, ResolveKey(decl.key, decl.pattern));
    ResolvedCross r;
    r.key_id = std::move(key.first);
    r.fn = std::move(key.second);
    resolved.push_back(std::move(r));
  }
  const size_t merge_shards =
      cross_shards_ > 0 ? cross_shards_ : plan.shard_count;
  for (const ResolvedCross& r : resolved) {
    bool found = false;
    for (PipelinePlan::CrossGroupPlan& g : plan.cross_groups) {
      if (g.key_id == r.key_id) {
        ++g.query_count;
        found = true;
        break;
      }
    }
    if (!found) {
      PipelinePlan::CrossGroupPlan g;
      g.key_id = r.key_id;
      g.query_count = 1;
      g.merge_shards = merge_shards;
      plan.cross_groups.push_back(std::move(g));
    }
  }

  // --- Plain/cross lane ----------------------------------------------------
  if (!plain_.empty() || !cross_.empty()) {
    // MPSC ingest needs the sharded runtime even at budget 1: only Shard
    // has per-producer lanes and the merging worker.
    plan.sequential = plan.shard_count == 1 && ingest_producers_ <= 1;
    if (plan.sequential) {
      // Budget 1: one in-process engine answers plain AND cross queries
      // exactly (a single partition sees the whole stream in order) with
      // no worker threads and no exchange fabric.
      for (PipelinePlan::CrossGroupPlan& g : plan.cross_groups) {
        g.merge_shards = 0;
      }
      pipeline->sequential_ = std::make_unique<StreamingCepEngine>();
      for (const PlainDecl& decl : plain_) {
        PLDP_ASSIGN_OR_RETURN(
            size_t index,
            pipeline->sequential_->AddQuery(decl.pattern, decl.window));
        pipeline->plain_map_.push_back(index);
      }
      for (const CrossDecl& decl : cross_) {
        PLDP_ASSIGN_OR_RETURN(
            size_t index,
            pipeline->sequential_->AddQuery(decl.pattern, decl.window));
        pipeline->cross_map_.push_back(index);
      }
      // The sequential engine hosts plain AND cross queries in one index
      // space; dispatch per-query detection callbacks through one table.
      bool any_callback = false;
      for (const PlainDecl& decl : plain_) {
        any_callback = any_callback || decl.callback != nullptr;
      }
      for (const CrossDecl& decl : cross_) {
        any_callback = any_callback || decl.callback != nullptr;
      }
      if (any_callback) {
        std::vector<std::function<void(Timestamp)>> dispatch(
            pipeline->sequential_->query_count());
        for (size_t i = 0; i < plain_.size(); ++i) {
          if (plain_[i].callback) {
            dispatch[pipeline->plain_map_[i]] = plain_[i].callback;
          }
        }
        for (size_t i = 0; i < cross_.size(); ++i) {
          if (cross_[i].callback) {
            dispatch[pipeline->cross_map_[i]] = cross_[i].callback;
          }
        }
        pipeline->sequential_->SetCallback(
            [dispatch =
                 std::move(dispatch)](const StreamingDetection& detection) {
              if (detection.query_index < dispatch.size() &&
                  dispatch[detection.query_index]) {
                dispatch[detection.query_index](detection.at);
              }
            });
      }
      // No Shard worker exists in this plan, so the pipeline itself
      // records the shard-level instruments around the in-process engine —
      // same exposition schema at every shard budget.
      if (obs::MetricsRegistry* registry = pipeline->metrics_.get()) {
        obs::ShardInstruments ins;
        ins.events = registry->AddCounter(
            "pldp_shard_events_total", "Events popped and processed by a shard",
            {{"lane", "plain"}, {"shard", "0"}});
        ins.batch_size = registry->AddHistogram(
            "pldp_shard_batch_size", "Events per worker pop burst",
            {{"lane", "plain"}, {"shard", "0"}});
        ins.process_latency_ns = registry->AddHistogram(
            "pldp_shard_process_latency_ns",
            "Per-event shard processing latency (engine + sink + exchange), "
            "ns",
            {{"lane", "plain"}, {"shard", "0"}});
        pipeline->seq_obs_ = ins;
      }
    } else {
      ParallelEngineOptions options;
      options.shard_count = plan.shard_count;
      options.queue_capacity = queue_capacity_;
      options.seed = seed_;
      options.exchange.shard_count = merge_shards;
      options.exchange.lane_capacity = exchange_capacity_;
      options.exchange.reorder_capacity = reorder_capacity_;
      options.overload = overload_;
      options.ingest_producers = ingest_producers_;
      options.pin_threads = pin_threads_;
      options.affinity_cores = affinity_cores_;
      pipeline->runtime_ =
          std::make_unique<ParallelStreamingEngine>(std::move(options));
      for (const PlainDecl& decl : plain_) {
        PLDP_ASSIGN_OR_RETURN(
            size_t index,
            pipeline->runtime_->AddQuery(decl.pattern, decl.window));
        pipeline->plain_map_.push_back(index);
      }
      for (size_t i = 0; i < cross_.size(); ++i) {
        PLDP_ASSIGN_OR_RETURN(
            size_t index,
            pipeline->runtime_->AddCrossQueryKeyed(
                cross_[i].pattern, cross_[i].window, resolved[i].key_id,
                resolved[i].fn));
        pipeline->cross_map_.push_back(index);
      }
      for (size_t i = 0; i < plain_.size(); ++i) {
        if (plain_[i].callback) {
          PLDP_RETURN_IF_ERROR(pipeline->runtime_->SetQueryCallback(
              pipeline->plain_map_[i], plain_[i].callback));
        }
      }
      for (size_t i = 0; i < cross_.size(); ++i) {
        if (cross_[i].callback) {
          PLDP_RETURN_IF_ERROR(pipeline->runtime_->SetCrossQueryCallback(
              pipeline->cross_map_[i], cross_[i].callback));
        }
      }
      if (pipeline->metrics_ != nullptr) {
        PLDP_RETURN_IF_ERROR(
            pipeline->runtime_->EnableMetrics(pipeline->metrics_.get(),
                                              "plain"));
      }
      PLDP_RETURN_IF_ERROR(pipeline->runtime_->Start());
      if (ingest_producers_ > 1) {
        for (size_t p = 0; p < pipeline->runtime_->producer_count(); ++p) {
          pipeline->producers_.push_back(std::unique_ptr<PipelineProducer>(
              new PipelineProducer(pipeline.get(),
                                   pipeline->runtime_->producer(p))));
        }
      }
    }
  }

  // --- Private lane --------------------------------------------------------
  if (has_private) {
    ParallelPrivateOptions options;
    options.shard_count = plan.shard_count;
    options.queue_capacity = queue_capacity_;
    options.seed = seed_;
    options.window_size = window_size_;
    options.window_origin = window_origin_;
    options.exchange.shard_count = merge_shards;
    options.exchange.lane_capacity = exchange_capacity_;
    options.exchange.reorder_capacity = reorder_capacity_;
    options.overload = overload_;
    pipeline->private_engine_ =
        std::make_unique<ParallelPrivateEngine>(options);
    ParallelPrivateEngine& engine = *pipeline->private_engine_;
    for (const std::string& name : event_type_names_) {
      (void)engine.InternEventType(name);
    }
    engine.SetAlpha(alpha_);
    if (!history_.empty()) engine.SetHistory(history_);
    for (const Pattern& pattern : private_patterns_) {
      PLDP_RETURN_IF_ERROR(engine.RegisterPrivatePattern(pattern).status());
    }
    for (const PrivateDecl& decl : private_queries_) {
      PLDP_ASSIGN_OR_RETURN(QueryId id, engine.RegisterTargetQuery(
                                            decl.name, decl.pattern));
      pipeline->private_map_.push_back(id);
    }
    for (const PrivateCrossDecl& decl : private_cross_) {
      PLDP_ASSIGN_OR_RETURN(size_t index,
                            engine.RegisterCrossTargetQuery(
                                decl.name, decl.pattern, decl.window));
      pipeline->private_cross_map_.push_back(index);
    }
    if (pipeline->metrics_ != nullptr) {
      PLDP_RETURN_IF_ERROR(engine.EnableMetrics(pipeline->metrics_.get()));
    }
    PLDP_RETURN_IF_ERROR(engine.Activate(mechanism_factory_, epsilon_));
  }

  // --- Pipeline-level instruments -----------------------------------------
  if (obs::MetricsRegistry* registry = pipeline->metrics_.get()) {
    pipeline->ingest_counter_ = registry->AddCounter(
        "pldp_pipeline_events_ingested_total",
        "Events accepted by Pipeline::OnEvent/OnEventBatch");
    pipeline->intern_attr_entries_ = registry->AddGauge(
        "pldp_intern_attr_entries",
        "Interned attribute names (process-wide AttrNames table)");
    pipeline->intern_attr_budget_ = registry->AddGauge(
        "pldp_intern_attr_budget", "Entry cap of the AttrNames intern table");
    pipeline->intern_symbol_entries_ = registry->AddGauge(
        "pldp_intern_symbol_entries",
        "Interned string payloads (process-wide SymbolNames table)");
    pipeline->intern_symbol_budget_ = registry->AddGauge(
        "pldp_intern_symbol_budget",
        "Entry cap of the SymbolNames intern table");
  }

  return pipeline;
}

// ---------------------------------------------------------------------------
// Pipeline

Pipeline::~Pipeline() { (void)Stop(); }

Status Pipeline::OnEvent(const Event& event) {
  driver_role_.Assert();
  if (finished_) {
    return Status::FailedPrecondition("ingestion after Finish()/OnEnd");
  }
  if (sequential_ != nullptr) {
    const uint64_t t0 =
        seq_obs_.process_latency_ns != nullptr ? obs::MonotonicNowNs() : 0;
    PLDP_RETURN_IF_ERROR(sequential_->OnEvent(event));
    if (seq_obs_.process_latency_ns != nullptr) {
      seq_obs_.process_latency_ns->Record(obs::MonotonicNowNs() - t0);
    }
    if (seq_obs_.batch_size != nullptr) seq_obs_.batch_size->Record(1);
    if (seq_obs_.events != nullptr) seq_obs_.events->Inc();
  }
  if (runtime_ != nullptr) {
    PLDP_RETURN_IF_ERROR(runtime_->OnEvent(event));
  }
  if (private_engine_ != nullptr) {
    PLDP_RETURN_IF_ERROR(private_engine_->OnEvent(event));
  }
  // order: relaxed; standalone telemetry counter, readers tolerate lag.
  events_ingested_.fetch_add(1, std::memory_order_relaxed);
  if (ingest_counter_ != nullptr) ingest_counter_->Inc();
  return Status::OK();
}

Status Pipeline::OnEventBatch(EventSpan events) {
  driver_role_.Assert();
  if (finished_) {
    return Status::FailedPrecondition("ingestion after Finish()/OnEnd");
  }
  if (sequential_ != nullptr) {
    if (seq_obs_.events != nullptr && !events.empty()) {
      // Per-event loop (identical semantics to the base-class batch) with
      // a chained clock: one MonotonicNowNs per event, like Shard does.
      uint64_t t_prev = seq_obs_.process_latency_ns != nullptr
                            ? obs::MonotonicNowNs()
                            : 0;
      for (const Event& event : events) {
        PLDP_RETURN_IF_ERROR(sequential_->OnEvent(event));
        if (seq_obs_.process_latency_ns != nullptr) {
          const uint64_t t_now = obs::MonotonicNowNs();
          seq_obs_.process_latency_ns->Record(t_now - t_prev);
          t_prev = t_now;
        }
      }
      if (seq_obs_.batch_size != nullptr) {
        seq_obs_.batch_size->Record(events.size());
      }
      seq_obs_.events->Inc(events.size());
    } else {
      PLDP_RETURN_IF_ERROR(sequential_->OnEventBatch(events));
    }
  }
  if (runtime_ != nullptr) {
    PLDP_RETURN_IF_ERROR(runtime_->OnEventBatch(events));
  }
  if (private_engine_ != nullptr) {
    PLDP_RETURN_IF_ERROR(private_engine_->OnEventBatch(events));
  }
  // order: relaxed; standalone telemetry counter, readers tolerate lag.
  events_ingested_.fetch_add(events.size(), std::memory_order_relaxed);
  if (ingest_counter_ != nullptr) ingest_counter_->Inc(events.size());
  return Status::OK();
}

Status Pipeline::OnEnd() { return FinishInternal(); }

Status Pipeline::Drain() {
  if (runtime_ != nullptr) return runtime_->Drain();
  return Status::OK();
}

Status Pipeline::FinishInternal() {
  driver_role_.Assert();
  if (finished_) return finish_status_;
  finished_ = true;
  Status result = Status::OK();
  if (runtime_ != nullptr) {
    const Status s = runtime_->Finish();
    if (result.ok() && !s.ok()) result = s;
  }
  if (private_engine_ != nullptr) {
    const Status s = private_engine_->Finish();
    if (result.ok() && !s.ok()) result = s;
  }
  finish_status_ = result;
  return finish_status_;
}

StatusOr<FinishedPipeline> Pipeline::Finish() {
  PLDP_RETURN_IF_ERROR(FinishInternal());
  return FinishedPipeline(this);
}

Status Pipeline::Stop() {
  Status result = Status::OK();
  if (runtime_ != nullptr) {
    const Status s = runtime_->Stop();
    if (result.ok() && !s.ok()) result = s;
  }
  if (private_engine_ != nullptr) {
    const Status s = private_engine_->Stop();
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

size_t Pipeline::events_processed() const {
  // order: relaxed; telemetry read, exactness not required mid-run.
  return static_cast<size_t>(
      events_ingested_.load(std::memory_order_relaxed));
}

uint64_t Pipeline::events_shed() const {
  uint64_t total = 0;
  if (runtime_ != nullptr) total += runtime_->events_shed();
  if (private_engine_ != nullptr) total += private_engine_->events_shed();
  return total;
}

SheddingStats Pipeline::shedding_stats() const {
  SheddingStats s;
  s.shed = events_shed();
  // order: relaxed; telemetry read, exactness not required mid-run.
  const uint64_t seen = events_ingested_.load(std::memory_order_relaxed);
  // events_ingested_ counts OnEvent acceptances (offered events); admitted
  // is what actually survived the overload policy.
  s.admitted = seen >= s.shed ? seen - s.shed : 0;
  return s;
}

obs::MetricsSnapshot Pipeline::MetricsSnapshot() {
  if (metrics_ == nullptr) return obs::MetricsSnapshot();
  if (runtime_ != nullptr) runtime_->RefreshMetricGauges();
  if (private_engine_ != nullptr) private_engine_->RefreshMetricGauges();
  if (intern_attr_entries_ != nullptr) {
    intern_attr_entries_->Set(static_cast<double>(AttrNames().size()));
    intern_attr_budget_->Set(static_cast<double>(AttrNames().budget()));
    intern_symbol_entries_->Set(static_cast<double>(SymbolNames().size()));
    intern_symbol_budget_->Set(static_cast<double>(SymbolNames().budget()));
  }
  return metrics_->Snapshot();
}

obs::PipelineHealth Pipeline::Health(
    const obs::HealthThresholds& thresholds) const {
  obs::PipelineHealth health;
  if (runtime_ != nullptr) runtime_->CollectHealth(&health, "plain");
  if (private_engine_ != nullptr) private_engine_->CollectHealth(&health);
  obs::FinalizeHealth(&health, thresholds);
  return health;
}

std::vector<ShardStats> Pipeline::ShardStatsSnapshot() const {
  if (runtime_ != nullptr) return runtime_->ShardStatsSnapshot();
  if (private_engine_ != nullptr) return private_engine_->ShardStatsSnapshot();
  return {};
}

std::vector<ShardStats> Pipeline::CrossShardStatsSnapshot() const {
  std::vector<ShardStats> stats;
  if (runtime_ != nullptr) {
    const std::vector<ShardStats> part = runtime_->CrossShardStatsSnapshot();
    stats.insert(stats.end(), part.begin(), part.end());
  }
  if (private_engine_ != nullptr) {
    const std::vector<ShardStats> part =
        private_engine_->CrossShardStatsSnapshot();
    stats.insert(stats.end(), part.begin(), part.end());
  }
  return stats;
}

// ---------------------------------------------------------------------------
// PipelineProducer

Status PipelineProducer::OnEvent(const Event& event) {
  PLDP_RETURN_IF_ERROR(producer_->OnEvent(event));
  // order: relaxed; standalone telemetry counter, readers tolerate lag.
  pipeline_->events_ingested_.fetch_add(1, std::memory_order_relaxed);
  if (pipeline_->ingest_counter_ != nullptr) {
    pipeline_->ingest_counter_->Inc();
  }
  return Status::OK();
}

Status PipelineProducer::OnEventBatch(EventSpan events) {
  PLDP_RETURN_IF_ERROR(producer_->OnEventBatch(events));
  // order: relaxed; standalone telemetry counter, readers tolerate lag.
  pipeline_->events_ingested_.fetch_add(events.size(),
                                        std::memory_order_relaxed);
  if (pipeline_->ingest_counter_ != nullptr) {
    pipeline_->ingest_counter_->Inc(events.size());
  }
  return Status::OK();
}

void PipelineProducer::PublishFloor() { producer_->PublishFloor(); }

size_t PipelineProducer::index() const { return producer_->index(); }

// ---------------------------------------------------------------------------
// FinishedPipeline

namespace {

/// The hard-error replacement for the old facades' unknown-name lookups: a
/// handle either proves a successful registration on exactly this
/// pipeline, or the lookup refuses loudly.
Status CheckHandle(const Pipeline* pipeline, uint64_t pipeline_uid,
                   const internal::QueryHandleRep& rep, const char* kind) {
  (void)pipeline;
  if (rep.builder_uid != pipeline_uid) {
    return Status::InvalidArgument(std::string(kind) +
                                   " handle does not belong to this pipeline");
  }
  if (!rep.valid()) {
    return Status::InvalidArgument(
        std::string(kind) +
        " handle is invalid (its registration failed; Build() reported the "
        "error)");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<Timestamp>> FinishedPipeline::Detections(
    const QueryHandle& handle) const {
  PLDP_RETURN_IF_ERROR(CheckHandle(pipeline_, pipeline_->builder_uid_,
                                   handle.rep_, "query"));
  const size_t index = pipeline_->plain_map_[handle.rep_.index];
  if (pipeline_->sequential_ != nullptr) {
    return pipeline_->sequential_->DetectionsOf(index);
  }
  return pipeline_->runtime_->DetectionsOf(index);
}

StatusOr<std::vector<Timestamp>> FinishedPipeline::Detections(
    const CrossQueryHandle& handle) const {
  PLDP_RETURN_IF_ERROR(CheckHandle(pipeline_, pipeline_->builder_uid_,
                                   handle.rep_, "cross query"));
  const size_t index = pipeline_->cross_map_[handle.rep_.index];
  if (pipeline_->sequential_ != nullptr) {
    return pipeline_->sequential_->DetectionsOf(index);
  }
  return pipeline_->runtime_->CrossDetectionsOf(index);
}

StatusOr<std::vector<Timestamp>> FinishedPipeline::Detections(
    const PrivateCrossQueryHandle& handle) const {
  PLDP_RETURN_IF_ERROR(CheckHandle(pipeline_, pipeline_->builder_uid_,
                                   handle.rep_, "private cross query"));
  return pipeline_->private_engine_->CrossDetectionsOf(
      pipeline_->private_cross_map_[handle.rep_.index]);
}

std::vector<StreamId> FinishedPipeline::Subjects() const {
  if (pipeline_->private_engine_ == nullptr) return {};
  return pipeline_->private_engine_->SubjectIds();
}

StatusOr<AnswerSeries> FinishedPipeline::AnswersOf(
    const PrivateQueryHandle& handle, StreamId subject) const {
  PLDP_RETURN_IF_ERROR(CheckHandle(pipeline_, pipeline_->builder_uid_,
                                   handle.rep_, "private query"));
  PLDP_ASSIGN_OR_RETURN(
      const SubjectResults* results,
      pipeline_->private_engine_->ResultsViewFor(subject));
  const QueryId id = pipeline_->private_map_[handle.rep_.index];
  if (id >= results->answers.size()) {
    return Status::Internal("private query id out of range");
  }
  return results->answers[id];
}

size_t FinishedPipeline::total_windows() const {
  if (pipeline_->private_engine_ == nullptr) return 0;
  return pipeline_->private_engine_->total_windows();
}

size_t FinishedPipeline::total_detections() const {
  if (pipeline_->sequential_ != nullptr) {
    // The sequential engine hosts plain AND cross queries in one index
    // space; count only the plain ones here (cross queries are reported
    // by total_cross_detections, matching the sharded topologies).
    size_t total = 0;
    for (size_t index : pipeline_->plain_map_) {
      StatusOr<std::vector<Timestamp>> part =
          pipeline_->sequential_->DetectionsOf(index);
      if (part.ok()) total += part.value().size();
    }
    return total;
  }
  if (pipeline_->runtime_ != nullptr) {
    return pipeline_->runtime_->total_detections();
  }
  return 0;
}

size_t FinishedPipeline::total_cross_detections() const {
  size_t total = 0;
  if (pipeline_->sequential_ != nullptr) {
    for (size_t index : pipeline_->cross_map_) {
      StatusOr<std::vector<Timestamp>> part =
          pipeline_->sequential_->DetectionsOf(index);
      if (part.ok()) total += part.value().size();
    }
  }
  if (pipeline_->runtime_ != nullptr) {
    total += pipeline_->runtime_->total_cross_detections();
  }
  if (pipeline_->private_engine_ != nullptr) {
    total += pipeline_->private_engine_->total_cross_detections();
  }
  return total;
}

size_t FinishedPipeline::events_processed() const {
  return pipeline_->events_processed();
}

}  // namespace pldp
