// Copyright 2026 The PLDP Authors.

#include "core/private_engine.h"

namespace pldp {

StatusOr<PatternId> PrivateCepEngine::RegisterPrivatePattern(Pattern pattern) {
  if (active_) {
    return Status::FailedPrecondition(
        "setup phase is over (Activate was called)");
  }
  PLDP_ASSIGN_OR_RETURN(PatternId id,
                        cep_.mutable_patterns()->Register(std::move(pattern)));
  private_patterns_.push_back(id);
  return id;
}

StatusOr<QueryId> PrivateCepEngine::RegisterTargetQuery(
    const std::string& query_name, Pattern pattern) {
  if (active_) {
    return Status::FailedPrecondition(
        "setup phase is over (Activate was called)");
  }
  PLDP_ASSIGN_OR_RETURN(PatternId pid,
                        cep_.mutable_patterns()->Register(std::move(pattern)));
  target_patterns_.push_back(pid);
  return cep_.RegisterQuery(query_name, pid);
}

Status PrivateCepEngine::Activate(std::unique_ptr<PrivacyMechanism> mechanism,
                                  double epsilon) {
  if (mechanism == nullptr) {
    return Status::InvalidArgument("mechanism must not be null");
  }
  if (active_) return Status::FailedPrecondition("already active");
  if (private_patterns_.empty()) {
    return Status::FailedPrecondition(
        "no private patterns registered; use the plain CepEngine when "
        "nothing needs protection");
  }
  if (cep_.queries().empty()) {
    return Status::FailedPrecondition("no target queries registered");
  }

  PLDP_RETURN_IF_ERROR(mechanism->Initialize(BuildContext(epsilon)));
  mechanism_ = std::move(mechanism);
  epsilon_ = epsilon;
  active_ = true;
  return Status::OK();
}

MechanismContext PrivateCepEngine::BuildContext(double epsilon) const {
  MechanismContext ctx;
  ctx.event_types = &cep_.event_types();
  ctx.patterns = &cep_.patterns();
  ctx.private_patterns = private_patterns_;
  ctx.target_patterns = target_patterns_;
  ctx.epsilon = epsilon;
  ctx.alpha = alpha_;
  ctx.history = history_.empty() ? nullptr : &history_;
  return ctx;
}

StatusOr<PrivateQueryResults> PrivateCepEngine::ProcessStream(
    const EventStream& stream, const Windower& windower, Rng* rng) {
  PLDP_ASSIGN_OR_RETURN(auto windows, windower.Apply(stream));
  return ProcessWindows(windows, rng);
}

StatusOr<PrivateQueryResults> PrivateCepEngine::ProcessWindows(
    const std::vector<Window>& windows, Rng* rng) {
  if (!active_) return Status::FailedPrecondition("Activate() not called");
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");

  PrivateQueryResults results;
  results.window_count = windows.size();
  results.answers.resize(cep_.queries().size());

  for (const Window& w : windows) {
    PLDP_ASSIGN_OR_RETURN(PublishedView view,
                          mechanism_->PublishWindow(w, rng));
    for (const BinaryQuery& q : cep_.queries()) {
      const Pattern& target = cep_.patterns().Get(q.target);
      results.answers[q.id].Append(PatternDetectedInView(view, target));
    }
  }
  return results;
}

StatusOr<PrivateQueryResults> PrivateCepEngine::GroundTruth(
    const std::vector<Window>& windows) const {
  PrivateQueryResults results;
  results.window_count = windows.size();
  results.answers.resize(cep_.queries().size());
  const size_t type_count = cep_.event_types().size();
  for (const Window& w : windows) {
    PublishedView view = TrueView(w, type_count);
    for (const BinaryQuery& q : cep_.queries()) {
      const Pattern& target = cep_.patterns().Get(q.target);
      results.answers[q.id].Append(PatternDetectedInView(view, target));
    }
  }
  return results;
}

}  // namespace pldp
