// Copyright 2026 The PLDP Authors.
//
// The trusted CEP engine of the paper's system model (Fig. 2).
//
// Setup phase:    data subjects register private patterns; data consumers
//                 register binary target queries and the quality parameter
//                 α; one privacy mechanism is selected and granted the
//                 pattern-level budget ε.
// Service phase:  raw streams arrive; the engine windows them, lets the
//                 mechanism publish protected views, and answers every
//                 registered query from the protected views only. Raw data
//                 never crosses the engine boundary.
//
// DEPRECATED as a user-facing facade for serving: declare private queries
// through `PipelineBuilder` (api/pipeline_builder.h) instead — the planner
// compiles the sharded private lane and gates results behind typed
// handles. This class remains the setup-phase substrate of
// ParallelPrivateEngine and the evaluation harness's batch entry point.

#ifndef PLDP_CORE_PRIVATE_ENGINE_H_
#define PLDP_CORE_PRIVATE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cep/engine.h"
#include "common/random.h"
#include "common/status.h"
#include "ppm/mechanism.h"
#include "stream/window.h"

namespace pldp {

/// Per-query protected answers plus bookkeeping.
struct PrivateQueryResults {
  /// answers[q] aligns with the engine's query ids.
  std::vector<AnswerSeries> answers;
  /// The windows that were evaluated (for inspection / re-evaluation).
  size_t window_count = 0;
};

/// Facade over CepEngine + PrivacyMechanism.
class PrivateCepEngine {
 public:
  PrivateCepEngine() = default;

  // --- Setup phase ---------------------------------------------------------

  /// Interns an event type (data subjects and consumers agree on names).
  EventTypeId InternEventType(const std::string& name) {
    return cep_.InternEventType(name);
  }

  EventTypeRegistry* mutable_event_types() {
    return cep_.mutable_event_types();
  }
  const EventTypeRegistry& event_types() const { return cep_.event_types(); }
  const PatternRegistry& patterns() const { return cep_.patterns(); }
  const std::vector<BinaryQuery>& queries() const { return cep_.queries(); }
  const std::vector<PatternId>& private_patterns() const {
    return private_patterns_;
  }
  const std::vector<PatternId>& target_patterns() const {
    return target_patterns_;
  }

  /// Data subject declares a private pattern.
  StatusOr<PatternId> RegisterPrivatePattern(Pattern pattern);

  /// Consumer registers a target pattern + continuous binary query on it.
  StatusOr<QueryId> RegisterTargetQuery(const std::string& query_name,
                                        Pattern pattern);

  /// Consumer-side quality parameter α (paper eq. 3) used by adaptive
  /// mechanisms.
  void SetAlpha(double alpha) { alpha_ = alpha; }

  /// Historical windows the data subjects granted for adaptive tuning.
  void SetHistory(std::vector<Window> history) {
    history_ = std::move(history);
  }

  /// Selects the mechanism and grants the pattern-level budget; finishes
  /// the setup phase (calls mechanism->Initialize with the assembled
  /// context). Must come after all pattern/query registrations.
  Status Activate(std::unique_ptr<PrivacyMechanism> mechanism, double epsilon);

  /// Assembles the MechanismContext Activate hands to the mechanism. Public
  /// so ParallelPrivateEngine can configure its shard-local mechanism
  /// instances with the exact same view of the setup phase. The returned
  /// context borrows from this engine (registries, history) and must not
  /// outlive it.
  MechanismContext BuildContext(double epsilon) const;

  const PrivacyMechanism* mechanism() const { return mechanism_.get(); }

  // --- Service phase -------------------------------------------------------

  /// Windows a raw stream and answers every registered query from the
  /// mechanism's protected views.
  StatusOr<PrivateQueryResults> ProcessStream(const EventStream& stream,
                                              const Windower& windower,
                                              Rng* rng);

  /// Same, over pre-built windows.
  StatusOr<PrivateQueryResults> ProcessWindows(
      const std::vector<Window>& windows, Rng* rng);

  /// Ground-truth answers (no privacy) — only for evaluation harnesses;
  /// a deployed engine would not expose this.
  StatusOr<PrivateQueryResults> GroundTruth(
      const std::vector<Window>& windows) const;

 private:
  CepEngine cep_;
  std::vector<PatternId> private_patterns_;
  std::vector<PatternId> target_patterns_;
  std::vector<Window> history_;
  double alpha_ = 0.5;
  double epsilon_ = 0.0;
  std::unique_ptr<PrivacyMechanism> mechanism_;
  bool active_ = false;
};

}  // namespace pldp

#endif  // PLDP_CORE_PRIVATE_ENGINE_H_
