// Copyright 2026 The PLDP Authors.
//
// Umbrella header: include <core/pldp.h> to get the whole public API.
//
// Library map:
//   api/       PipelineBuilder — the declarative entry point: plans the
//              minimal topology from the declared queries, typed handles
//   common/    Status/StatusOr, deterministic Rng, logging, CSV, math
//   event/     Value, Event, EventTypeRegistry
//   stream/    EventStream, windowing, merge, replay, CSV persistence
//   cep/       Pattern, predicates, matchers, queries, CepEngine
//   dp/        budgets, randomized response, Laplace, composition,
//              budget conversion, neighbor models
//   ppm/       PrivacyMechanism: uniform/adaptive pattern-level PPMs,
//              BD/BA/landmark baselines, factory
//   quality/   precision/recall/Q/MRE metrics, report tables
//   datasets/  Algorithm-2 synthetic generator, taxi simulator
//   runtime/   sharded parallel streaming runtime (SPSC queues, router,
//              shards, ParallelStreamingEngine, batched ingest)
//   obs/       telemetry: metrics registry, per-stage instruments,
//              Prometheus/JSON exposition, health roll-up, TCP endpoint
//   core/      PrivateCepEngine facade, ParallelPrivateEngine (sharded
//              service phase), evaluation pipeline

#ifndef PLDP_CORE_PLDP_H_
#define PLDP_CORE_PLDP_H_

#include "api/pipeline_builder.h"
#include "cep/engine.h"
#include "cep/matcher.h"
#include "cep/pattern.h"
#include "cep/correlation.h"
#include "cep/pattern_stream.h"
#include "cep/predicate.h"
#include "cep/query.h"
#include "cep/streaming_engine.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/math_utils.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/evaluation.h"
#include "core/parallel_private_engine.h"
#include "core/private_engine.h"
#include "datasets/dataset.h"
#include "datasets/synthetic.h"
#include "datasets/taxi.h"
#include "datasets/tdrive_loader.h"
#include "dp/budget.h"
#include "dp/budget_conversion.h"
#include "dp/composition.h"
#include "dp/exponential.h"
#include "dp/laplace.h"
#include "dp/ledger.h"
#include "dp/neighbors.h"
#include "dp/randomized_response.h"
#include "event/event.h"
#include "event/event_type.h"
#include "event/value.h"
#include "obs/endpoint.h"
#include "obs/health.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "ppm/adaptive.h"
#include "ppm/factory.h"
#include "ppm/landmark.h"
#include "ppm/mechanism.h"
#include "ppm/numeric.h"
#include "ppm/pattern_level.h"
#include "ppm/subject_publisher.h"
#include "ppm/w_event.h"
#include "quality/metrics.h"
#include "quality/report.h"
#include "runtime/parallel_engine.h"
#include "runtime/router.h"
#include "runtime/shard.h"
#include "runtime/spsc_queue.h"
#include "stream/event_stream.h"
#include "stream/replay.h"
#include "stream/stream_io.h"
#include "stream/window.h"

#endif  // PLDP_CORE_PLDP_H_
