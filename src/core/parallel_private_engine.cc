// Copyright 2026 The PLDP Authors.

#include "core/parallel_private_engine.h"

#include <algorithm>
#include <utility>

namespace pldp {
namespace {

/// Adapts a SubjectViewPublisher to the shard worker's sink interface and
/// taps its protected views for the exchange: every published view is
/// flattened into presence events (one per present type, timestamped at
/// the window start, attributed to the subject) and emitted downstream.
/// Raw events never reach the emitter — only post-perturbation views do.
class PublisherSink final : public ShardEventSink {
 public:
  explicit PublisherSink(SubjectPublisherOptions options)
      : publisher_(std::move(options)) {
    publisher_.SetViewCallback(
        [this](StreamId subject, const Window& window,
               const PublishedView& view) {
          ForwardView(subject, window, view);
        });
  }

  void OnShardEvent(const Event& event) override { publisher_.Absorb(event); }

  void AttachExchangeEmitter(ExchangeEmitter* emitter) override {
    emitter_ = emitter;
  }

  void OnShardFinish(uint64_t finish_seq) override {
    // Publisher finalization runs here, on the worker, so the final views
    // flow through the exchange before the terminal watermark closes the
    // lanes. Errors latch inside the publisher; Finish() collects them.
    finalizing_ = true;
    finish_seq_ = finish_seq;
    (void)publisher_.Finalize();
    finalizing_ = false;
  }

  SubjectViewPublisher* publisher() { return &publisher_; }

 private:
  void ForwardView(StreamId subject, const Window& window,
                   const PublishedView& view) {
    if (emitter_ == nullptr) return;
    if (finalizing_) {
      // Finalize-time views share one trigger (the finish bound) across
      // all producers; sub-keys by subject keep the merged order globally
      // deterministic — ascending subject, matching a sequential
      // publisher's ordered Finalize — because subjects are disjoint
      // across shards.
      emitter_->BeginTrigger(finish_seq_,
                             static_cast<uint64_t>(subject) << 32);
    }
    for (size_t t = 0; t < view.presence.size(); ++t) {
      if (!view.presence[t]) continue;
      (void)emitter_->Emit(
          Event(static_cast<EventTypeId>(t), window.start, subject));
    }
  }

  SubjectViewPublisher publisher_;
  ExchangeEmitter* emitter_ = nullptr;
  bool finalizing_ = false;
  uint64_t finish_seq_ = 0;
};

}  // namespace

ParallelPrivateEngine::ParallelPrivateEngine(ParallelPrivateOptions options)
    : options_(options) {}

ParallelPrivateEngine::~ParallelPrivateEngine() { (void)Stop(); }

StatusOr<PatternId> ParallelPrivateEngine::RegisterPrivatePattern(
    Pattern pattern) {
  if (active()) {
    return Status::FailedPrecondition(
        "setup phase is over (Activate was called)");
  }
  return setup_.RegisterPrivatePattern(std::move(pattern));
}

StatusOr<QueryId> ParallelPrivateEngine::RegisterTargetQuery(
    const std::string& query_name, Pattern pattern) {
  if (active()) {
    return Status::FailedPrecondition(
        "setup phase is over (Activate was called)");
  }
  return setup_.RegisterTargetQuery(query_name, std::move(pattern));
}

StatusOr<size_t> ParallelPrivateEngine::RegisterCrossTargetQuery(
    const std::string& query_name, Pattern pattern, Timestamp window) {
  if (active()) {
    return Status::FailedPrecondition(
        "setup phase is over (Activate was called)");
  }
  CrossQuery query;
  query.name = query_name;
  query.pattern = std::move(pattern);
  query.window = window;
  cross_queries_.push_back(std::move(query));
  return cross_queries_.size() - 1;
}

SubjectPublisherOptions ParallelPrivateEngine::MakePublisherOptions() const {
  SubjectPublisherOptions opts;
  opts.context = setup_.BuildContext(epsilon_);
  opts.factory = factory_;
  opts.queries = setup_.queries();
  opts.window_size = options_.window_size;
  opts.window_origin = options_.window_origin;
  opts.seed = options_.seed;
  return opts;
}

Status ParallelPrivateEngine::Activate(MechanismFactory factory,
                                       double epsilon) {
  if (active()) return Status::FailedPrecondition("already active");
  if (!factory) return Status::InvalidArgument("factory must not be null");
  if (options_.window_size <= 0) {
    return Status::InvalidArgument("options.window_size must be > 0");
  }
  if (setup_.private_patterns().empty()) {
    return Status::FailedPrecondition(
        "no private patterns registered; use the plain runtime when nothing "
        "needs protection");
  }
  if (setup_.queries().empty()) {
    return Status::FailedPrecondition("no target queries registered");
  }
  factory_ = std::move(factory);
  epsilon_ = epsilon;

  // Validate the mechanism configuration eagerly (like
  // PrivateCepEngine::Activate) instead of surfacing the error on the first
  // event of some shard.
  PLDP_ASSIGN_OR_RETURN(std::unique_ptr<PrivacyMechanism> probe, factory_());
  if (probe == nullptr) {
    return Status::InvalidArgument("factory returned a null mechanism");
  }
  PLDP_RETURN_IF_ERROR(probe->Initialize(setup_.BuildContext(epsilon_)));

  ParallelEngineOptions runtime_options;
  runtime_options.shard_count = options_.shard_count;
  runtime_options.queue_capacity = options_.queue_capacity;
  runtime_options.seed = options_.seed;
  runtime_options.overload = options_.overload;
  runtime_options.sink_factory = [this](size_t) {
    auto sink = std::make_unique<PublisherSink>(MakePublisherOptions());
    publishers_.push_back(sink->publisher());
    return std::unique_ptr<ShardEventSink>(std::move(sink));
  };
  if (!cross_queries_.empty() || options_.exchange.enabled) {
    runtime_options.exchange = options_.exchange;
    runtime_options.exchange.enabled = true;
    // Privacy invariant of this facade: nothing but protected views may
    // cross the exchange, whatever the caller configured.
    runtime_options.exchange.forward_raw_events = false;
  }
  runtime_ = std::make_unique<ParallelStreamingEngine>(runtime_options);
  for (const CrossQuery& query : cross_queries_) {
    StatusOr<size_t> added =
        runtime_->AddCrossQuery(query.pattern, query.window);
    if (!added.ok()) {
      runtime_.reset();
      publishers_.clear();
      return added.status();
    }
  }

  // Budget accounting: this activation spends each private pattern's
  // lifetime budget ε (sequential composition — a later re-activation
  // would need a fresh ledger). Recorded whether or not metrics are on.
  for (PatternId id : setup_.private_patterns()) {
    Status granted = ledger_.Grant(id, epsilon_);
    if (granted.ok()) {
      granted = ledger_.Charge(id, epsilon_, "service activation");
    }
    if (!granted.ok()) {
      runtime_.reset();
      publishers_.clear();
      return granted;
    }
  }

  if (metrics_ != nullptr) {
    Status wired = runtime_->EnableMetrics(metrics_, "private");
    if (!wired.ok()) {
      runtime_.reset();
      publishers_.clear();
      return wired;
    }
    for (size_t i = 0; i < publishers_.size(); ++i) {
      const std::string shard_label = std::to_string(i);
      obs::PublisherInstruments ins;
      ins.windows = metrics_->AddCounter(
          "pldp_private_windows_total",
          "Protected windows published by a shard's publisher",
          {{"lane", "private"}, {"shard", shard_label}});
      ins.subjects = metrics_->AddGauge(
          "pldp_private_subjects",
          "Distinct data subjects with live state on a shard",
          {{"lane", "private"}, {"shard", shard_label}});
      publishers_[i]->SetInstruments(ins);
    }
    for (PatternId id : setup_.private_patterns()) {
      const std::string& name = setup_.patterns().Get(id).name();
      obs::Gauge* granted = metrics_->AddGauge(
          "pldp_dp_budget_granted",
          "Lifetime privacy budget granted to a private pattern (epsilon)",
          {{"pattern", name}});
      if (granted != nullptr) granted->Set(epsilon_);
      obs::Gauge* spent = metrics_->AddGauge(
          "pldp_dp_budget_spent",
          "Privacy budget charged against a private pattern (epsilon)",
          {{"pattern", name}});
      StatusOr<double> remaining = ledger_.Remaining(id);
      if (spent != nullptr && remaining.ok()) {
        spent->Set(epsilon_ - remaining.value());
      }
    }
  }

  Status started = runtime_->Start();
  if (!started.ok()) {
    runtime_.reset();
    publishers_.clear();
  }
  return started;
}

Status ParallelPrivateEngine::EnableMetrics(obs::MetricsRegistry* registry) {
  if (active()) {
    return Status::FailedPrecondition("EnableMetrics must precede Activate()");
  }
  if (registry == nullptr) {
    return Status::InvalidArgument("registry must not be null");
  }
  if (metrics_ != nullptr) {
    return Status::FailedPrecondition("metrics already enabled");
  }
  metrics_ = registry;
  return Status::OK();
}

void ParallelPrivateEngine::RefreshMetricGauges() {
  if (runtime_ != nullptr) runtime_->RefreshMetricGauges();
}

void ParallelPrivateEngine::CollectHealth(obs::PipelineHealth* health) const {
  if (runtime_ != nullptr) runtime_->CollectHealth(health, "private");
}

Status ParallelPrivateEngine::OnEvent(const Event& event) {
  driver_role_.Assert();
  if (!active()) return Status::FailedPrecondition("Activate() not called");
  if (finished_) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  return runtime_->OnEvent(event);
}

Status ParallelPrivateEngine::OnEventBatch(EventSpan events) {
  driver_role_.Assert();
  if (!active()) return Status::FailedPrecondition("Activate() not called");
  if (finished_) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  return runtime_->OnEventBatch(events);
}

Status ParallelPrivateEngine::Finish() {
  driver_role_.Assert();
  if (!active()) return Status::FailedPrecondition("Activate() not called");
  if (finished_) return finish_status_;
  // The runtime's Finish runs every publisher's Finalize on its own worker
  // (forwarding the final views through the exchange) and seals the
  // stage-2 side; its barrier orders every worker-side mutation before the
  // orchestrator's reads below.
  PLDP_RETURN_IF_ERROR(runtime_->Finish());
  finished_ = true;
  for (SubjectViewPublisher* publisher : publishers_) {
    // Already finalized on the worker; this just collects latched errors.
    const Status s = publisher->Finalize();
    if (finish_status_.ok() && !s.ok()) finish_status_ = s;
  }
  return finish_status_;
}

Status ParallelPrivateEngine::Stop() {
  if (!active()) return Status::OK();
  return runtime_->Stop();
}

std::vector<StreamId> ParallelPrivateEngine::SubjectIds() const {
  driver_role_.Assert();
  std::vector<StreamId> ids;
  if (!finished_) return ids;  // publisher state is worker-owned until then
  for (const SubjectViewPublisher* publisher : publishers_) {
    const std::vector<StreamId> part = publisher->SubjectIds();
    ids.insert(ids.end(), part.begin(), part.end());
  }
  std::sort(ids.begin(), ids.end());  // publishers hold disjoint subjects
  return ids;
}

StatusOr<SubjectResults> ParallelPrivateEngine::ResultsFor(
    StreamId subject) const {
  PLDP_ASSIGN_OR_RETURN(const SubjectResults* results,
                        ResultsViewFor(subject));
  return *results;
}

StatusOr<const SubjectResults*> ParallelPrivateEngine::ResultsViewFor(
    StreamId subject) const {
  driver_role_.Assert();
  if (!finished_) {
    return Status::FailedPrecondition(
        "results are only stable after Finish()/OnEnd");
  }
  for (const SubjectViewPublisher* publisher : publishers_) {
    const SubjectResults* results = publisher->ResultsFor(subject);
    if (results != nullptr) return results;
  }
  return Status::NotFound("subject never emitted an event");
}

StatusOr<std::vector<Timestamp>> ParallelPrivateEngine::CrossDetectionsOf(
    size_t cross_query_index) const {
  driver_role_.Assert();
  if (!finished_) {
    return Status::FailedPrecondition(
        "cross detections are only stable after Finish()/OnEnd");
  }
  return runtime_->CrossDetectionsOf(cross_query_index);
}

StatusOr<QueryId> ParallelPrivateEngine::TargetQueryIdOf(
    const std::string& query_name) const {
  for (const BinaryQuery& query : setup_.queries()) {
    if (query.name == query_name) return query.id;
  }
  return Status::NotFound("unknown target query name '" + query_name + "'");
}

StatusOr<size_t> ParallelPrivateEngine::CrossQueryIndexOf(
    const std::string& query_name) const {
  for (size_t i = 0; i < cross_queries_.size(); ++i) {
    if (cross_queries_[i].name == query_name) return i;
  }
  return Status::NotFound("unknown cross query name '" + query_name + "'");
}

size_t ParallelPrivateEngine::total_cross_detections() const {
  driver_role_.Assert();
  if (!finished_ || runtime_ == nullptr) return 0;
  return runtime_->total_cross_detections();
}

size_t ParallelPrivateEngine::total_windows() const {
  driver_role_.Assert();
  size_t total = 0;
  if (!finished_) return total;  // worker-owned until the Finish barrier
  for (const SubjectViewPublisher* publisher : publishers_) {
    total += publisher->total_windows();
  }
  return total;
}

size_t ParallelPrivateEngine::events_processed() const {
  return runtime_ == nullptr ? 0 : runtime_->events_processed();
}

size_t ParallelPrivateEngine::shard_count() const {
  return runtime_ == nullptr ? 0 : runtime_->shard_count();
}

std::vector<ShardStats> ParallelPrivateEngine::ShardStatsSnapshot() const {
  return runtime_ == nullptr ? std::vector<ShardStats>{}
                             : runtime_->ShardStatsSnapshot();
}

std::vector<ShardStats> ParallelPrivateEngine::CrossShardStatsSnapshot()
    const {
  return runtime_ == nullptr ? std::vector<ShardStats>{}
                             : runtime_->CrossShardStatsSnapshot();
}

}  // namespace pldp
