// Copyright 2026 The PLDP Authors.

#include "core/parallel_private_engine.h"

#include <algorithm>
#include <utility>

namespace pldp {
namespace {

/// Adapts a SubjectViewPublisher to the shard worker's sink interface.
class PublisherSink final : public ShardEventSink {
 public:
  explicit PublisherSink(SubjectPublisherOptions options)
      : publisher_(std::move(options)) {}

  void OnShardEvent(const Event& event) override { publisher_.Absorb(event); }

  SubjectViewPublisher* publisher() { return &publisher_; }

 private:
  SubjectViewPublisher publisher_;
};

}  // namespace

ParallelPrivateEngine::ParallelPrivateEngine(ParallelPrivateOptions options)
    : options_(options) {}

ParallelPrivateEngine::~ParallelPrivateEngine() { (void)Stop(); }

StatusOr<PatternId> ParallelPrivateEngine::RegisterPrivatePattern(
    Pattern pattern) {
  if (active()) {
    return Status::FailedPrecondition(
        "setup phase is over (Activate was called)");
  }
  return setup_.RegisterPrivatePattern(std::move(pattern));
}

StatusOr<QueryId> ParallelPrivateEngine::RegisterTargetQuery(
    const std::string& query_name, Pattern pattern) {
  if (active()) {
    return Status::FailedPrecondition(
        "setup phase is over (Activate was called)");
  }
  return setup_.RegisterTargetQuery(query_name, std::move(pattern));
}

SubjectPublisherOptions ParallelPrivateEngine::MakePublisherOptions() const {
  SubjectPublisherOptions opts;
  opts.context = setup_.BuildContext(epsilon_);
  opts.factory = factory_;
  opts.queries = setup_.queries();
  opts.window_size = options_.window_size;
  opts.window_origin = options_.window_origin;
  opts.seed = options_.seed;
  return opts;
}

Status ParallelPrivateEngine::Activate(MechanismFactory factory,
                                       double epsilon) {
  if (active()) return Status::FailedPrecondition("already active");
  if (!factory) return Status::InvalidArgument("factory must not be null");
  if (options_.window_size <= 0) {
    return Status::InvalidArgument("options.window_size must be > 0");
  }
  if (setup_.private_patterns().empty()) {
    return Status::FailedPrecondition(
        "no private patterns registered; use the plain runtime when nothing "
        "needs protection");
  }
  if (setup_.queries().empty()) {
    return Status::FailedPrecondition("no target queries registered");
  }
  factory_ = std::move(factory);
  epsilon_ = epsilon;

  // Validate the mechanism configuration eagerly (like
  // PrivateCepEngine::Activate) instead of surfacing the error on the first
  // event of some shard.
  PLDP_ASSIGN_OR_RETURN(std::unique_ptr<PrivacyMechanism> probe, factory_());
  if (probe == nullptr) {
    return Status::InvalidArgument("factory returned a null mechanism");
  }
  PLDP_RETURN_IF_ERROR(probe->Initialize(setup_.BuildContext(epsilon_)));

  ParallelEngineOptions runtime_options;
  runtime_options.shard_count = options_.shard_count;
  runtime_options.queue_capacity = options_.queue_capacity;
  runtime_options.seed = options_.seed;
  runtime_options.sink_factory = [this](size_t) {
    auto sink = std::make_unique<PublisherSink>(MakePublisherOptions());
    publishers_.push_back(sink->publisher());
    return std::unique_ptr<ShardEventSink>(std::move(sink));
  };
  runtime_ = std::make_unique<ParallelStreamingEngine>(runtime_options);
  return runtime_->Start();
}

Status ParallelPrivateEngine::OnEvent(const Event& event) {
  if (!active()) return Status::FailedPrecondition("Activate() not called");
  if (finished_) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  return runtime_->OnEvent(event);
}

Status ParallelPrivateEngine::OnEventBatch(EventSpan events) {
  if (!active()) return Status::FailedPrecondition("Activate() not called");
  if (finished_) {
    return Status::FailedPrecondition("ingestion after Finish()");
  }
  return runtime_->OnEventBatch(events);
}

Status ParallelPrivateEngine::Finish() {
  if (!active()) return Status::FailedPrecondition("Activate() not called");
  if (finished_) return finish_status_;
  // Drain orders every worker-side publisher mutation before the
  // orchestrator's Finalize below (release/acquire on the shard counters).
  PLDP_RETURN_IF_ERROR(runtime_->Drain());
  finished_ = true;
  for (SubjectViewPublisher* publisher : publishers_) {
    const Status s = publisher->Finalize();
    if (finish_status_.ok() && !s.ok()) finish_status_ = s;
  }
  return finish_status_;
}

Status ParallelPrivateEngine::Stop() {
  if (!active()) return Status::OK();
  return runtime_->Stop();
}

std::vector<StreamId> ParallelPrivateEngine::SubjectIds() const {
  std::vector<StreamId> ids;
  if (!finished_) return ids;  // publisher state is worker-owned until then
  for (const SubjectViewPublisher* publisher : publishers_) {
    const std::vector<StreamId> part = publisher->SubjectIds();
    ids.insert(ids.end(), part.begin(), part.end());
  }
  std::sort(ids.begin(), ids.end());  // publishers hold disjoint subjects
  return ids;
}

StatusOr<SubjectResults> ParallelPrivateEngine::ResultsFor(
    StreamId subject) const {
  if (!finished_) {
    return Status::FailedPrecondition(
        "results are only stable after Finish()/OnEnd");
  }
  for (const SubjectViewPublisher* publisher : publishers_) {
    const SubjectResults* results = publisher->ResultsFor(subject);
    if (results != nullptr) return *results;
  }
  return Status::NotFound("subject never emitted an event");
}

size_t ParallelPrivateEngine::total_windows() const {
  size_t total = 0;
  if (!finished_) return total;  // worker-owned until the Finish barrier
  for (const SubjectViewPublisher* publisher : publishers_) {
    total += publisher->total_windows();
  }
  return total;
}

size_t ParallelPrivateEngine::events_processed() const {
  return runtime_ == nullptr ? 0 : runtime_->events_processed();
}

size_t ParallelPrivateEngine::shard_count() const {
  return runtime_ == nullptr ? 0 : runtime_->shard_count();
}

std::vector<ShardStats> ParallelPrivateEngine::ShardStatsSnapshot() const {
  return runtime_ == nullptr ? std::vector<ShardStats>{}
                             : runtime_->ShardStatsSnapshot();
}

}  // namespace pldp
