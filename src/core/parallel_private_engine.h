// Copyright 2026 The PLDP Authors.
//
// Sharded end-to-end service phase: the paper's trusted middleware (Fig. 2)
// scaled across cores with shard-local PLDP perturbation.
//
// `ParallelPrivateEngine` mirrors `PrivateCepEngine`'s setup phase (private
// patterns, target queries, α, history, a pattern-level budget ε), then
// runs the service phase on the sharded runtime: events are routed by
// subject onto N shards, and each shard worker feeds its substream into a
// `SubjectViewPublisher` that windows every subject's stream, publishes
// protected views through a per-subject mechanism instance, and answers
// every registered query from the views — raw events never leave the
// middleware. After `Finish()` (or `OnEnd` from a `StreamReplayer`), the
// per-shard protected answers are merged by subject.
//
// Cross-subject target queries ride the repartition/exchange stage
// (runtime/exchange.h): each published protected view is flattened into
// presence events (one per present type, stamped with the subject and the
// window start) and re-keyed over the exchange onto stage-2 merge shards,
// which run the cross-subject queries over the *protected* event stream —
// so even cross-subject correlation only ever sees post-perturbation data.
//
//     caller / StreamReplayer
//        │ OnEvent / OnEventBatch
//        ▼
//     ParallelStreamingEngine ── subject hash ──► Shard worker
//                                                   │ ShardEventSink
//                                                   ▼
//                                         SubjectViewPublisher
//                                     (per-subject tumbling windows,
//                                      per-subject mechanism + Rng,
//                                      protected answers)
//                                                   │ protected views
//                                                   ▼
//                                    exchange lanes ─► MergeShards
//                                    (cross-subject queries on views)
//        merged per-subject answers  ◄──── Finish(): Drain + worker-side
//        + cross-subject detections        Finalize + exchange seal
//
// Determinism: per-subject Rngs derive from (seed, subject id) — see
// SubjectSeed — so results are bit-identical across shard counts and equal
// to a sequential `PrivateCepEngine::ProcessStream` over each subject's
// substream with the same per-subject seed (pinned by
// tests/core_parallel_private_test.cc). Cross-subject detections are
// likewise shard-count-invariant: view events carry exchange merge keys
// that reproduce the sequential publication order exactly (pinned by
// tests/core_parallel_private_cross_test.cc).
//
// DEPRECATED as a user-facing facade: declare private patterns/queries on
// a `PipelineBuilder` (api/pipeline_builder.h) and let the planner build
// this engine — typed handles replace the name-keyed registrations and
// the Finish()-before-reads contract is enforced by the result types.
// This class remains the planner's private-lane execution target.

#ifndef PLDP_CORE_PARALLEL_PRIVATE_ENGINE_H_
#define PLDP_CORE_PARALLEL_PRIVATE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/private_engine.h"
#include "dp/ledger.h"
#include "ppm/subject_publisher.h"
#include "runtime/parallel_engine.h"

namespace pldp {

/// Knobs of the sharded private service phase.
struct ParallelPrivateOptions {
  /// Worker shards. 0 = one per available hardware thread.
  size_t shard_count = 0;
  /// Per-shard queue capacity (see ParallelEngineOptions).
  size_t queue_capacity = 1024;
  /// Base seed: per-shard Rngs and per-subject mechanism Rngs derive from
  /// it deterministically.
  uint64_t seed = 0x9d11a7eULL;
  /// Tumbling evaluation window applied to every subject's stream. Must be
  /// > 0 at Activate.
  Timestamp window_size = 0;
  Timestamp window_origin = 0;
  /// Exchange stage configuration for cross-subject target queries.
  /// Enabled automatically when any cross query is registered;
  /// forward_raw_events is always forced off — only protected views may
  /// cross the exchange.
  RuntimeExchangeOptions exchange;
  /// Ingest overload policy (runtime/overload.h). Shedding drops raw
  /// events BEFORE perturbation — dropped events consume no privacy
  /// budget, but the affected subjects' windows are computed on a thinned
  /// substream.
  OverloadOptions overload;
};

/// Sharded drop-in for the PrivateCepEngine service phase. Lifecycle:
/// registrations → Activate(factory, ε) → OnEvent*/OnEventBatch* →
/// Finish()/OnEnd → read per-subject results → Stop().
class ParallelPrivateEngine : public StreamSubscriber {
 public:
  explicit ParallelPrivateEngine(ParallelPrivateOptions options);
  ~ParallelPrivateEngine() override;

  ParallelPrivateEngine(const ParallelPrivateEngine&) = delete;
  ParallelPrivateEngine& operator=(const ParallelPrivateEngine&) = delete;

  // --- Setup phase (delegates to an embedded PrivateCepEngine) ------------

  EventTypeId InternEventType(const std::string& name) {
    return setup_.InternEventType(name);
  }
  const EventTypeRegistry& event_types() const { return setup_.event_types(); }
  const std::vector<BinaryQuery>& queries() const { return setup_.queries(); }

  StatusOr<PatternId> RegisterPrivatePattern(Pattern pattern);
  StatusOr<QueryId> RegisterTargetQuery(const std::string& query_name,
                                        Pattern pattern);

  /// Registers a cross-subject target query: `pattern` is matched over the
  /// exchanged protected-view stream (presence events across all subjects)
  /// with all elements within `window` time units. Returns the cross-query
  /// index (its own index space). Must precede Activate.
  StatusOr<size_t> RegisterCrossTargetQuery(const std::string& query_name,
                                            Pattern pattern,
                                            Timestamp window);

  void SetAlpha(double alpha) { setup_.SetAlpha(alpha); }
  void SetHistory(std::vector<Window> history) {
    setup_.SetHistory(std::move(history));
  }

  /// Validates the setup, grants the pattern-level budget ε, builds the
  /// sharded runtime (with the exchange stage when cross queries exist),
  /// and starts the workers. `factory` creates one fresh mechanism per
  /// data subject (see MechanismFactory).
  Status Activate(MechanismFactory factory, double epsilon);

  /// Registers this lane's instruments in `registry` when Activate builds
  /// the runtime: the underlying sharded runtime under lane="private",
  /// per-shard publisher windows/subjects, and per-pattern budget-ledger
  /// gauges. Must precede Activate; `registry` must outlive the engine.
  Status EnableMetrics(obs::MetricsRegistry* registry);

  /// Refreshes the private lane's snapshot-time gauges. No-op before
  /// Activate or without metrics.
  void RefreshMetricGauges();

  /// Appends this lane's health rows (lane="private"). Safe while active.
  void CollectHealth(obs::PipelineHealth* health) const;

  /// The per-pattern budget audit trail: Activate grants every private
  /// pattern its lifetime budget ε and charges the activation against it.
  const PatternBudgetLedger& ledger() const { return ledger_; }

  bool active() const { return runtime_ != nullptr; }

  // --- Service phase (single ingest thread) -------------------------------

  Status OnEvent(const Event& event) override;
  Status OnEventBatch(EventSpan events) override;

  /// Drains the shards, finalizes every publisher on its worker (closing
  /// each subject's open window and forwarding the final protected views),
  /// and seals the exchange. Terminal for ingestion: further OnEvent calls
  /// are refused. Idempotent. Results are valid once this returns.
  Status Finish();
  Status OnEnd() override { return Finish(); }

  /// Joins the shard workers. Idempotent; called by the destructor.
  Status Stop();

  // --- Results (valid after Finish(); publisher state is worker-owned
  // until the Finish barrier, so these refuse to read it early) -----------

  /// All data subjects observed, ascending. Empty before Finish().
  std::vector<StreamId> SubjectIds() const;

  /// Protected answers of one subject (indexed by query id). NotFound for
  /// subjects that never emitted an event; FailedPrecondition before
  /// Finish().
  StatusOr<SubjectResults> ResultsFor(StreamId subject) const;

  /// Non-copying variant: the view lives in the owning publisher and stays
  /// valid until this engine is destroyed. Same error contract as
  /// ResultsFor.
  StatusOr<const SubjectResults*> ResultsViewFor(StreamId subject) const;

  /// Detections of one cross-subject query over the protected-view stream,
  /// merged across merge shards and sorted by timestamp (window starts).
  /// FailedPrecondition before Finish().
  StatusOr<std::vector<Timestamp>> CrossDetectionsOf(
      size_t cross_query_index) const;

  /// Resolves a target query's registered name to its QueryId. Unknown
  /// names are a hard NotFound error — never an empty default.
  StatusOr<QueryId> TargetQueryIdOf(const std::string& query_name) const;

  /// Resolves a cross query's registered name to its index; NotFound for
  /// unknown names.
  StatusOr<size_t> CrossQueryIndexOf(const std::string& query_name) const;

  size_t cross_query_count() const { return cross_queries_.size(); }

  /// Total cross-subject detections. 0 before Finish().
  size_t total_cross_detections() const;

  /// Windows published across all subjects and shards. 0 before Finish().
  size_t total_windows() const;

  size_t events_processed() const;

  /// Events dropped by the overload policy (0 under the default kBlock
  /// policy or before Activate). Safe from any thread.
  uint64_t events_shed() const {
    return runtime_ != nullptr ? runtime_->events_shed() : 0;
  }

  size_t shard_count() const;
  std::vector<ShardStats> ShardStatsSnapshot() const;
  std::vector<ShardStats> CrossShardStatsSnapshot() const;

 private:
  struct CrossQuery {
    std::string name;
    Pattern pattern;
    Timestamp window = 0;
  };

  SubjectPublisherOptions MakePublisherOptions() const;

  ParallelPrivateOptions options_;
  PrivateCepEngine setup_;
  MechanismFactory factory_;
  double epsilon_ = 0.0;
  std::vector<CrossQuery> cross_queries_;
  std::unique_ptr<ParallelStreamingEngine> runtime_;
  /// One publisher per shard, owned by the shards (via their sinks).
  std::vector<SubjectViewPublisher*> publishers_;
  /// Activation budget audit: one grant + one activation charge per
  /// private pattern (always maintained, metrics or not).
  PatternBudgetLedger ledger_;
  /// Registry recorded by EnableMetrics, wired during Activate.
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Single-driver contract: one thread drives ingest, Finish, and the
  /// post-Finish result reads (asserted at those entry points).
  ThreadRole driver_role_;
  bool finished_ PLDP_GUARDED_BY(driver_role_) = false;
  /// First Finalize error, re-returned by every later Finish().
  Status finish_status_ PLDP_GUARDED_BY(driver_role_) = Status::OK();
};

}  // namespace pldp

#endif  // PLDP_CORE_PARALLEL_PRIVATE_ENGINE_H_
