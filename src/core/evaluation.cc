// Copyright 2026 The PLDP Authors.

#include "core/evaluation.h"

#include "common/strings.h"
#include "ppm/mechanism.h"
#include "quality/metrics.h"

namespace pldp {

StatusOr<EvaluationResult> RunEvaluation(const Dataset& dataset,
                                         const EvaluationConfig& config) {
  if (dataset.private_patterns.empty() || dataset.target_patterns.empty()) {
    return Status::InvalidArgument(
        "dataset needs private and target patterns");
  }
  if (config.repetitions == 0) {
    return Status::InvalidArgument("repetitions must be > 0");
  }

  PLDP_ASSIGN_OR_RETURN(auto split,
                        dataset.SplitHistory(config.history_fraction));
  const std::vector<Window>& history = split.first;
  const std::vector<Window>& eval_windows = split.second;
  const size_t type_count = dataset.event_types.size();

  // Mechanism setup (adaptive mechanisms tune on `history` here).
  PLDP_ASSIGN_OR_RETURN(
      auto mechanism,
      MakeMechanism(config.mechanism, config.mechanism_options));
  MechanismContext ctx;
  ctx.event_types = &dataset.event_types;
  ctx.patterns = &dataset.patterns;
  ctx.private_patterns = dataset.private_patterns;
  ctx.target_patterns = dataset.target_patterns;
  ctx.epsilon = config.epsilon;
  ctx.alpha = config.alpha;
  ctx.history = &history;
  PLDP_RETURN_IF_ERROR(mechanism->Initialize(ctx));

  // Ground truth per evaluation window per target (computed once).
  std::vector<std::vector<bool>> truth(eval_windows.size());
  for (size_t w = 0; w < eval_windows.size(); ++w) {
    PublishedView true_view = TrueView(eval_windows[w], type_count);
    truth[w].reserve(dataset.target_patterns.size());
    for (PatternId target : dataset.target_patterns) {
      truth[w].push_back(
          PatternDetectedInView(true_view, dataset.patterns.Get(target)));
    }
  }

  EvaluationResult result;
  result.mechanism = config.mechanism;
  result.epsilon = config.epsilon;
  result.q_ordinary = 1.0;  // exact detection without a PPM

  Rng seeder(config.seed);
  for (size_t rep = 0; rep < config.repetitions; ++rep) {
    Rng rng = seeder.Fork();
    mechanism->Reset();
    ConfusionMatrix cm;
    for (size_t w = 0; w < eval_windows.size(); ++w) {
      PLDP_ASSIGN_OR_RETURN(PublishedView view,
                            mechanism->PublishWindow(eval_windows[w], &rng));
      for (size_t t = 0; t < dataset.target_patterns.size(); ++t) {
        bool predicted = PatternDetectedInView(
            view, dataset.patterns.Get(dataset.target_patterns[t]));
        cm.Add(truth[w][t], predicted);
      }
    }
    PLDP_ASSIGN_OR_RETURN(double q, cm.Quality(config.alpha));
    PLDP_ASSIGN_OR_RETURN(double mre, MeanRelativeError(result.q_ordinary, q));
    result.q_ppm.Add(q);
    result.precision.Add(cm.Precision());
    result.recall.Add(cm.Recall());
    result.mre.Add(mre);
  }
  return result;
}

ResultTable SweepResult::ToTable(int precision) const {
  std::vector<std::string> headers = {"mechanism"};
  for (double e : epsilons) headers.push_back(StrFormat("eps=%.2f", e));
  ResultTable table(std::move(headers));
  for (size_t m = 0; m < mechanisms.size(); ++m) {
    // AddRow only fails on column-count mismatch, which is impossible here.
    (void)table.AddRow(mechanisms[m], mre[m], precision);
  }
  return table;
}

StatusOr<SweepResult> SweepEpsilons(const Dataset& dataset,
                                    const std::vector<std::string>& mechanisms,
                                    const std::vector<double>& epsilons,
                                    const EvaluationConfig& base_config) {
  if (mechanisms.empty() || epsilons.empty()) {
    return Status::InvalidArgument("need at least one mechanism and epsilon");
  }
  SweepResult sweep;
  sweep.mechanisms = mechanisms;
  sweep.epsilons = epsilons;
  sweep.mre.assign(mechanisms.size(),
                   std::vector<double>(epsilons.size(), 0.0));
  sweep.mre_sem.assign(mechanisms.size(),
                       std::vector<double>(epsilons.size(), 0.0));
  for (size_t m = 0; m < mechanisms.size(); ++m) {
    for (size_t e = 0; e < epsilons.size(); ++e) {
      EvaluationConfig config = base_config;
      config.mechanism = mechanisms[m];
      config.epsilon = epsilons[e];
      PLDP_ASSIGN_OR_RETURN(EvaluationResult r, RunEvaluation(dataset, config));
      sweep.mre[m][e] = r.mre.mean();
      sweep.mre_sem[m][e] = r.mre.sem();
    }
  }
  return sweep;
}

}  // namespace pldp
