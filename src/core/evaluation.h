// Copyright 2026 The PLDP Authors.
//
// The experiment pipeline behind every figure reproduction:
//
//   dataset → (history | evaluation windows)
//           → mechanism initialized with pattern-level ε (and history)
//           → repetitions: publish every evaluation window, answer every
//             target query from the published views, accumulate the
//             confusion matrix against ground truth
//           → Q = α·Prec + (1−α)·Rec per repetition
//           → MRE = (Q_ord − Q_ppm)/Q_ord   averaged over repetitions.
//
// Ground truth uses the same binary-query reduction as the mechanisms
// (PatternDetectedInView over the truthful view), so the comparison
// isolates exactly the mechanism's noise.

#ifndef PLDP_CORE_EVALUATION_H_
#define PLDP_CORE_EVALUATION_H_

#include <string>
#include <vector>

#include "common/math_utils.h"
#include "common/status.h"
#include "datasets/dataset.h"
#include "ppm/factory.h"
#include "quality/report.h"

namespace pldp {

/// One experiment configuration.
struct EvaluationConfig {
  /// Mechanism name understood by MakeMechanism.
  std::string mechanism = "uniform";
  /// Pattern-level privacy budget ε per private pattern.
  double epsilon = 1.0;
  /// Quality trade-off α (paper: 0.5).
  double alpha = 0.5;
  /// Monte-Carlo repetitions of the service phase.
  size_t repetitions = 20;
  /// Base seed; repetition r uses an independent fork.
  uint64_t seed = 0x51f0a1b2c3d4e5f6ULL;
  /// Fraction of windows used as history for adaptive tuning.
  double history_fraction = 0.3;
  /// Options forwarded to the mechanism factory.
  MechanismFactoryOptions mechanism_options;
};

/// Aggregated outcome of one configuration.
struct EvaluationResult {
  std::string mechanism;
  double epsilon = 0.0;
  /// Quality without any PPM (1.0 by construction of the reduction, kept
  /// explicit for the MRE formula).
  double q_ordinary = 1.0;
  RunningStats q_ppm;
  RunningStats precision;
  RunningStats recall;
  RunningStats mre;
};

/// Runs one configuration against a dataset.
StatusOr<EvaluationResult> RunEvaluation(const Dataset& dataset,
                                         const EvaluationConfig& config);

/// Sweeps mechanisms × ε values; returns rows (mechanism) × columns (ε) of
/// mean MRE — the series of the paper's Fig. 4.
struct SweepResult {
  std::vector<std::string> mechanisms;
  std::vector<double> epsilons;
  /// mre[m][e]: mean MRE of mechanisms[m] at epsilons[e].
  std::vector<std::vector<double>> mre;
  /// Standard errors, same shape.
  std::vector<std::vector<double>> mre_sem;

  /// Renders as a table with one row per mechanism.
  ResultTable ToTable(int precision = 4) const;
};

StatusOr<SweepResult> SweepEpsilons(const Dataset& dataset,
                                    const std::vector<std::string>& mechanisms,
                                    const std::vector<double>& epsilons,
                                    const EvaluationConfig& base_config);

}  // namespace pldp

#endif  // PLDP_CORE_EVALUATION_H_
