// Copyright 2026 The PLDP Authors.

#include "quality/metrics.h"

#include <cmath>

#include "common/strings.h"

namespace pldp {

void ConfusionMatrix::Add(bool truth, bool predicted) {
  if (truth) {
    predicted ? ++tp_ : ++fn_;
  } else {
    predicted ? ++fp_ : ++tn_;
  }
}

void ConfusionMatrix::Merge(const ConfusionMatrix& other) {
  tp_ += other.tp_;
  fp_ += other.fp_;
  fn_ += other.fn_;
  tn_ += other.tn_;
}

double ConfusionMatrix::Precision() const {
  if (tp_ + fp_ == 0) return fn_ == 0 ? 1.0 : 0.0;
  return static_cast<double>(tp_) / static_cast<double>(tp_ + fp_);
}

double ConfusionMatrix::Recall() const {
  if (tp_ + fn_ == 0) return 1.0;
  return static_cast<double>(tp_) / static_cast<double>(tp_ + fn_);
}

double ConfusionMatrix::F1() const {
  double p = Precision();
  double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

StatusOr<double> ConfusionMatrix::Quality(double alpha) const {
  if (alpha < 0.0 || alpha > 1.0 || !std::isfinite(alpha)) {
    return Status::InvalidArgument(
        StrFormat("alpha must be in [0, 1], got %g", alpha));
  }
  return alpha * Precision() + (1.0 - alpha) * Recall();
}

std::string ConfusionMatrix::ToString() const {
  return StrFormat("tp=%llu fp=%llu fn=%llu tn=%llu prec=%.4f rec=%.4f",
                   static_cast<unsigned long long>(tp_),
                   static_cast<unsigned long long>(fp_),
                   static_cast<unsigned long long>(fn_),
                   static_cast<unsigned long long>(tn_), Precision(),
                   Recall());
}

StatusOr<ConfusionMatrix> CompareSeries(const AnswerSeries& truth,
                                        const AnswerSeries& observed) {
  if (truth.size() != observed.size()) {
    return Status::InvalidArgument(
        StrFormat("series length mismatch: %zu vs %zu", truth.size(),
                  observed.size()));
  }
  ConfusionMatrix cm;
  for (size_t i = 0; i < truth.size(); ++i) {
    cm.Add(truth[i], observed[i]);
  }
  return cm;
}

double SheddingStats::ShedFraction() const {
  const uint64_t total = offered();
  if (total == 0) return 0.0;
  return static_cast<double>(shed) / static_cast<double>(total);
}

double SheddingStats::RecallLowerBound() const {
  const uint64_t total = offered();
  if (total == 0) return 1.0;
  return static_cast<double>(admitted) / static_cast<double>(total);
}

StatusOr<double> MeanRelativeError(double q_ordinary, double q_ppm) {
  if (!(q_ordinary > 0.0) || !std::isfinite(q_ordinary)) {
    return Status::InvalidArgument(
        StrFormat("ordinary quality must be > 0, got %g", q_ordinary));
  }
  if (!std::isfinite(q_ppm)) {
    return Status::InvalidArgument("PPM quality must be finite");
  }
  return (q_ordinary - q_ppm) / q_ordinary;
}

}  // namespace pldp
