// Copyright 2026 The PLDP Authors.
//
// Data-quality metrics (paper §III-B):
//
//   Rec  = TP / (TP + FN)                                  (eq. 1)
//   Prec = TP / (TP + FP)                                  (eq. 2)
//   Q    = α·Prec + (1 − α)·Rec                            (eq. 3)
//   MRE  = (Q_ord − Q_ppm) / Q_ord                         (eq. 4)
//
// The confusion matrix is accumulated over the per-window binary answers of
// a query: truth = answer on the unperturbed stream, prediction = answer
// published by the mechanism.

#ifndef PLDP_QUALITY_METRICS_H_
#define PLDP_QUALITY_METRICS_H_

#include <cstdint>
#include <string>

#include "cep/query.h"
#include "common/status.h"

namespace pldp {

/// Binary confusion-matrix accumulator.
class ConfusionMatrix {
 public:
  ConfusionMatrix() = default;

  void Add(bool truth, bool predicted);
  void Merge(const ConfusionMatrix& other);

  uint64_t tp() const { return tp_; }
  uint64_t fp() const { return fp_; }
  uint64_t fn() const { return fn_; }
  uint64_t tn() const { return tn_; }
  uint64_t total() const { return tp_ + fp_ + fn_ + tn_; }

  /// Precision (eq. 2). Degenerate case TP+FP = 0: returns 1 when there was
  /// also nothing to find (FN = 0) — a silent mechanism on an empty ground
  /// truth is perfect — and 0 otherwise.
  double Precision() const;

  /// Recall (eq. 1). Degenerate case TP+FN = 0 (no positives in ground
  /// truth): returns 1.
  double Recall() const;

  /// F1 = harmonic mean of precision and recall (0 when both are 0).
  double F1() const;

  /// Q = α·Prec + (1 − α)·Rec; α must be in [0, 1].
  StatusOr<double> Quality(double alpha) const;

  std::string ToString() const;

 private:
  uint64_t tp_ = 0;
  uint64_t fp_ = 0;
  uint64_t fn_ = 0;
  uint64_t tn_ = 0;
};

/// Builds the confusion matrix of `observed` against `truth` (same length).
StatusOr<ConfusionMatrix> CompareSeries(const AnswerSeries& truth,
                                        const AnswerSeries& observed);

/// MRE (eq. 4): relative quality loss of a PPM. `q_ordinary` must be > 0.
/// Negative results (the PPM accidentally scored higher) are kept — the
/// averaging over repetitions needs them.
StatusOr<double> MeanRelativeError(double q_ordinary, double q_ppm);

/// Load-shedding accounting for overload runs (runtime/overload.h). Unlike
/// the confusion matrix — which needs ground truth — this is computable
/// online: shedding only ever removes input events, so it can only cause
/// false NEGATIVES, never false positives, and the admitted fraction is a
/// conservative per-event recall proxy.
struct SheddingStats {
  uint64_t admitted = 0;  ///< events that entered a shard queue
  uint64_t shed = 0;      ///< events deliberately dropped at admission

  uint64_t offered() const { return admitted + shed; }

  /// Fraction of offered events dropped (0 when nothing was offered).
  double ShedFraction() const;

  /// Worst-case recall floor under the (pessimistic) assumption that every
  /// shed event would have completed a distinct match: admitted / offered.
  /// 1.0 when nothing was shed — detections are then exactly the no-shed
  /// run's detections (admission never reorders).
  double RecallLowerBound() const;
};

}  // namespace pldp

#endif  // PLDP_QUALITY_METRICS_H_
