// Copyright 2026 The PLDP Authors.

#include "quality/report.h"

#include <algorithm>

#include "common/csv.h"
#include "common/strings.h"

namespace pldp {

ResultTable::ResultTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Status ResultTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu cells, table has %zu columns", cells.size(),
                  headers_.size()));
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

Status ResultTable::AddRow(const std::string& label,
                           const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(StrFormat("%.*f", precision, v));
  }
  return AddRow(std::move(cells));
}

std::string ResultTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += "  ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

Status ResultTable::WriteCsv(const std::string& path) const {
  CsvWriter writer(path);
  PLDP_RETURN_IF_ERROR(writer.status());
  PLDP_RETURN_IF_ERROR(writer.WriteRow(headers_));
  for (const auto& row : rows_) {
    PLDP_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  return writer.Close();
}

}  // namespace pldp
