// Copyright 2026 The PLDP Authors.
//
// Tabular experiment reports. The benchmark harnesses print the same
// rows/series the paper's figures plot; `ResultTable` renders them aligned
// to stdout and optionally persists them as CSV next to the binaries.

#ifndef PLDP_QUALITY_REPORT_H_
#define PLDP_QUALITY_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace pldp {

/// A simple column-aligned table with string cells.
class ResultTable {
 public:
  /// Column headers define the width of every row.
  explicit ResultTable(std::vector<std::string> headers);

  /// Appends a row; must match the header count.
  Status AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  Status AddRow(const std::string& label, const std::vector<double>& values,
                int precision = 4);

  size_t row_count() const { return rows_.size(); }

  /// Column headers, in order.
  const std::vector<std::string>& headers() const { return headers_; }

  /// Row cells, in insertion order (machine-readable exports iterate these).
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with aligned columns.
  std::string ToString() const;

  /// Writes header + rows as CSV.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pldp

#endif  // PLDP_QUALITY_REPORT_H_
