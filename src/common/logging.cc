// Copyright 2026 The PLDP Authors.

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace pldp {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace pldp
