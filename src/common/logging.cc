// Copyright 2026 The PLDP Authors.

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/thread_annotations.h"

namespace pldp {

namespace {

/// Initial threshold: the PLDP_LOG_LEVEL environment variable when set
/// ("debug"/"info"/"warning"/"error"/"off", or the numeric 0-4), warning
/// otherwise. Read once at static-init time; SetLogLevel overrides later.
int InitialLevel() {
  const char* env = std::getenv("PLDP_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0) {
    return static_cast<int>(LogLevel::kDebug);
  }
  if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0) {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (std::strcmp(env, "warning") == 0 || std::strcmp(env, "warn") == 0 ||
      std::strcmp(env, "2") == 0) {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0) {
    return static_cast<int>(LogLevel::kError);
  }
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "none") == 0 ||
      std::strcmp(env, "4") == 0) {
    return static_cast<int>(LogLevel::kOff);
  }
  return static_cast<int>(LogLevel::kWarning);
}

std::atomic<int> g_min_level{InitialLevel()};
/// Serializes emission only (one stderr line at a time); the level gate is
/// the lock-free atomic above.
Mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

// order: relaxed; the level is an isolated filter knob — a straggling
// log line during a level change is harmless, nothing is published.
void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

// order: relaxed; see SetLogLevel().
LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    // order: relaxed; see SetLogLevel().
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace pldp
