// Copyright 2026 The PLDP Authors.

#include "common/csv.h"

#include <cstdio>
#include <fstream>

namespace pldp {

namespace {
bool NeedsQuoting(const std::string& field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}
}  // namespace

std::string CsvEncodeRow(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(sep);
    const std::string& f = fields[i];
    if (NeedsQuoting(f, sep)) {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += f;
    }
  }
  return out;
}

StatusOr<std::vector<std::string>> CsvDecodeRow(const std::string& line,
                                                char sep) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return Status::InvalidArgument("quote inside unquoted field");
      }
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
  fields.push_back(std::move(cur));
  return fields;
}

CsvWriter::CsvWriter(const std::string& path, char sep) : sep_(sep) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok()) return status_;
  std::string row = CsvEncodeRow(fields, sep_);
  row.push_back('\n');
  if (std::fwrite(row.data(), 1, row.size(), file_) != row.size()) {
    status_ = Status::IoError("short write");
  }
  return status_;
}

Status CsvWriter::Close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed");
    }
    file_ = nullptr;
  }
  if (status_.ok()) return Status::OK();
  return status_;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, bool skip_header, char sep) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    PLDP_ASSIGN_OR_RETURN(auto fields, CsvDecodeRow(line, sep));
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace pldp
