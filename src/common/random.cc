// Copyright 2026 The PLDP Authors.

#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pldp {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // xoshiro's all-zero state is degenerate; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ step.
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  if (bound == 0) return 0;
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 2^64 range (lo = INT64_MIN, hi = INT64_MAX).
  uint64_t draw = (span == 0) ? NextUint64() : UniformUint64(span);
  return lo + static_cast<int64_t>(draw);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Laplace(double scale) {
  // Inverse-CDF sampling: u uniform in (-1/2, 1/2],
  // x = -scale * sgn(u) * ln(1 - 2|u|).
  double u = UniformDouble() - 0.5;
  double sign = (u >= 0.0) ? 1.0 : -1.0;
  double mag = std::abs(u);
  // 1 - 2*mag can only hit 0 when UniformDouble() returned exactly 0.5 or 1,
  // the latter impossible; clamp to avoid -inf.
  double arg = std::max(1.0 - 2.0 * mag, std::numeric_limits<double>::min());
  return -scale * sign * std::log(arg);
}

double Rng::Exponential(double rate) {
  double u = UniformDouble();
  // log(1-u): u in [0,1) so 1-u in (0,1].
  return -std::log1p(-u) / rate;
}

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; avoid u1 == 0.
  double u1 = UniformDouble();
  if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::Geometric(double p) {
  if (p >= 1.0) return 0;
  double u = UniformDouble();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  // Partial Fisher-Yates: fix positions [0, k).
  for (size_t i = 0; i < k && i + 1 < n; ++i) {
    size_t j = i + static_cast<size_t>(UniformUint64(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(std::min(k, n));
  return all;
}

}  // namespace pldp
