// Copyright 2026 The PLDP Authors.
//
// Status and StatusOr: exception-free error handling for the PLDP library.
//
// The library follows the RocksDB/Abseil convention: fallible functions
// return `Status` (or `StatusOr<T>` when they also produce a value) instead
// of throwing. `Status` is cheap to copy in the OK case (no allocation).

#ifndef PLDP_COMMON_STATUS_H_
#define PLDP_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace pldp {

/// Canonical error space, modeled after the Abseil/gRPC canonical codes that
/// the database ecosystem (RocksDB, Arrow) converged on.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIoError = 9,
  kPrivacyBudgetExceeded = 10,  ///< Domain-specific: a mechanism would
                                ///< overspend its differential-privacy budget.
};

/// Human-readable name for a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds either success ("OK") or an error code plus message.
///
/// Typical usage:
///
///   Status DoWork() {
///     if (bad) return Status::InvalidArgument("bad input");
///     return Status::OK();
///   }
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(code, std::move(message))) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status PrivacyBudgetExceeded(std::string msg) {
    return Status(StatusCode::kPrivacyBudgetExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsPrivacyBudgetExceeded() const {
    return code() == StatusCode::kPrivacyBudgetExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // nullptr == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// StatusOr<T> holds either a T or a non-OK Status.
///
/// Access the value only after checking `ok()`; accessing the value of a
/// non-OK StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr constructed from OK status");
  }

  /// Constructs from a value (implicit, mirroring absl::StatusOr).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

// Early-return helpers (RocksDB/Arrow idiom).

#define PLDP_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::pldp::Status _pldp_status = (expr);         \
    if (!_pldp_status.ok()) return _pldp_status;  \
  } while (false)

#define PLDP_CONCAT_IMPL(a, b) a##b
#define PLDP_CONCAT(a, b) PLDP_CONCAT_IMPL(a, b)

#define PLDP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

/// PLDP_ASSIGN_OR_RETURN(auto x, MaybeMakeX()) — assigns on success,
/// propagates the error status otherwise.
#define PLDP_ASSIGN_OR_RETURN(lhs, expr) \
  PLDP_ASSIGN_OR_RETURN_IMPL(PLDP_CONCAT(_pldp_sor_, __LINE__), lhs, expr)

}  // namespace pldp

#endif  // PLDP_COMMON_STATUS_H_
