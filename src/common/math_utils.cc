// Copyright 2026 The PLDP Authors.

#include "common/math_utils.h"

#include <algorithm>
#include <cmath>

namespace pldp {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double StableSum(const std::vector<double>& xs) {
  // Neumaier's improved Kahan summation: unlike classic Kahan, it also
  // compensates when the addend exceeds the running sum in magnitude.
  double sum = 0.0;
  double c = 0.0;
  for (double x : xs) {
    double t = sum + x;
    if (std::abs(sum) >= std::abs(x)) {
      c += (sum - t) + x;
    } else {
      c += (x - t) + sum;
    }
    sum = t;
  }
  return sum + c;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return StableSum(xs) / static_cast<double>(xs.size());
}

double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

bool Near(double a, double b, double tol) { return std::abs(a - b) <= tol; }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = Clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace pldp
