// Copyright 2026 The PLDP Authors.
//
// Numeric helpers shared by the DP mechanisms and the evaluation pipeline.

#ifndef PLDP_COMMON_MATH_UTILS_H_
#define PLDP_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace pldp {

/// Numerically stable running mean/variance (Welford). Used to aggregate
/// Monte-Carlo repetitions of an experiment.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// Standard error of the mean.
  double sem() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Kahan-compensated sum of a vector.
double StableSum(const std::vector<double>& xs);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

/// True if |a-b| <= tol (absolute tolerance).
bool Near(double a, double b, double tol);

/// p-th percentile (p in [0,100]) with linear interpolation; input is copied
/// and sorted. Returns 0 for empty input.
double Percentile(std::vector<double> xs, double p);

}  // namespace pldp

#endif  // PLDP_COMMON_MATH_UTILS_H_
