// Copyright 2026 The PLDP Authors.
//
// Deterministic pseudo-random number generation for PLDP.
//
// Every stochastic component in the library (mechanisms, dataset generators,
// Monte-Carlo evaluators) draws randomness through `Rng`, which is seeded
// explicitly. This makes experiments reproducible bit-for-bit: the same seed
// always yields the same stream of draws on every platform (we use our own
// xoshiro256++ implementation rather than std:: distributions, whose output
// is implementation-defined).

#ifndef PLDP_COMMON_RANDOM_H_
#define PLDP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace pldp {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
/// Public because tests and generators use it for cheap stateless hashing
/// of (seed, index) pairs into independent sub-seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic RNG (xoshiro256++) with convenience samplers for the
/// distributions PLDP needs: uniform, Bernoulli, Laplace, exponential,
/// geometric, and Gaussian.
///
/// Not thread-safe; use one Rng per thread (see `Fork()`).
class Rng {
 public:
  /// Seeds the generator. Two Rngs with the same seed produce identical
  /// streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire) so the result is exactly uniform.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Laplace(0, scale) sample. `scale` must be > 0.
  double Laplace(double scale);

  /// Exponential(rate) sample, rate > 0.
  double Exponential(double rate);

  /// Standard normal via Box-Muller (deterministic given the draw stream).
  double Gaussian(double mean, double stddev);

  /// Geometric: number of failures before the first success, success
  /// probability p in (0, 1].
  uint64_t Geometric(double p);

  /// Deterministically derives an independent child generator. Used to give
  /// each worker / repetition its own stream without correlation.
  Rng Fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in random order (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

}  // namespace pldp

#endif  // PLDP_COMMON_RANDOM_H_
