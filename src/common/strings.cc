// Copyright 2026 The PLDP Authors.

#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pldp {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

StatusOr<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in number: '" + buf +
                                   "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of double range: '" + buf + "'");
  }
  return v;
}

StatusOr<int64_t> ParseInt64(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in integer: '" + buf +
                                   "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of int64 range: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace pldp
