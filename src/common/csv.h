// Copyright 2026 The PLDP Authors.
//
// Minimal CSV reading/writing for dataset export and experiment reports.
// Supports quoting of fields that contain the separator, quotes, or
// newlines (RFC 4180 subset; no embedded CR/LF round-tripping needed by
// PLDP's fixed schemas, but quoted fields are parsed correctly).

#ifndef PLDP_COMMON_CSV_H_
#define PLDP_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace pldp {

/// Serializes one CSV row, quoting fields where required.
std::string CsvEncodeRow(const std::vector<std::string>& fields,
                         char sep = ',');

/// Parses one CSV line (no embedded newlines) into fields.
StatusOr<std::vector<std::string>> CsvDecodeRow(const std::string& line,
                                                char sep = ',');

/// Streaming CSV writer bound to a file path.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Check `status()` before use.
  explicit CsvWriter(const std::string& path, char sep = ',');
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  Status status() const { return status_; }

  /// Appends one row. No-op (keeping the first error) if already failed.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes; further writes fail.
  Status Close();

 private:
  FILE* file_ = nullptr;
  char sep_;
  Status status_;
};

/// Loads a whole CSV file into memory. `skip_header` drops the first row.
StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, bool skip_header = false, char sep = ',');

}  // namespace pldp

#endif  // PLDP_COMMON_CSV_H_
