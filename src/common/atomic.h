// Copyright 2026 The PLDP Authors.
//
// The atomics indirection layer the lock-free protocol files build on.
//
// Normal builds: pure aliases onto the standard library — pldp::Atomic<T>
// IS std::atomic<T>, AtomicFence IS std::atomic_thread_fence, RaceCell<T>
// IS T, SyncMutex/SyncCondVar ARE std::mutex/std::condition_variable.
// Zero code, zero cost: the hot-path lint, the alloc gates, and the bench
// thresholds all hold unchanged (bench-smoke asserts this; see
// .github/workflows/ci.yml).
//
// Model-check builds (-DPLDP_MODEL_CHECK): the same names resolve to the
// shadow types in check/shadow.h, which route every load/store/RMW/fence
// through the model checker's cooperative scheduler as an explicit yield
// point with memory-order-sensitive visibility (relaxed loads can return
// stale values from the per-location store history). See check/model.h.
//
// Protocol code MUST name an explicit std::memory_order on every access
// and carry an adjacent `// order:` rationale — enforced build-free by
// tools/lint_atomics.py (ctest: atomics_lint) and, under PLDP_MODEL_CHECK,
// by the shadow types having no defaulted-order overloads.
//
// PLDP_PROTOCOL_ASSERT states a protocol invariant (e.g. "a reorder
// buffer never exceeds its credit-bounded capacity"): plain assert() in
// normal builds, a model-checker failure (with a replayable schedule
// trace) under PLDP_MODEL_CHECK.

#ifndef PLDP_COMMON_ATOMIC_H_
#define PLDP_COMMON_ATOMIC_H_

#ifdef PLDP_MODEL_CHECK

#include "check/shadow.h"

namespace pldp {

template <typename T>
using Atomic = check::ShadowAtomic<T>;
using AtomicFlag = check::ShadowAtomic<bool>;

inline void AtomicFence(std::memory_order order) {
  check::ShadowFence(order);
}

template <typename T>
using RaceCell = check::ShadowRaceCell<T>;

/// Moves the payload out of a RaceCell (race-checked in model builds,
/// plain std::move otherwise). Use at consume sites: `out =
/// RaceCellMove(slot)`.
template <typename T>
inline T&& RaceCellMove(check::ShadowRaceCell<T>& cell) {
  return cell.Take();
}

using SyncMutex = check::ModelMutex;
using SyncCondVar = check::ModelCondVar;

}  // namespace pldp

#define PLDP_PROTOCOL_ASSERT(cond)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::pldp::check::ProtocolAssertFail(#cond, __FILE__, __LINE__);     \
    }                                                                   \
  } while (0)

#else  // !PLDP_MODEL_CHECK

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <mutex>

namespace pldp {

template <typename T>
using Atomic = std::atomic<T>;
using AtomicFlag = std::atomic<bool>;

inline void AtomicFence(std::memory_order order) {
  // atomics-allow: forwarding wrapper; every call site names the order.
  std::atomic_thread_fence(order);
}

// In normal builds a RaceCell<T> is literally a T: the alias adds no
// wrapper, no padding, no indirection. Under PLDP_MODEL_CHECK it becomes
// a vector-clock-checked cell that reports unsynchronized access.
template <typename T>
using RaceCell = T;

/// Moves the payload out of a RaceCell (plain std::move here; the model
/// build's overload adds the race check).
template <typename T>
inline T&& RaceCellMove(T& cell) {
  return static_cast<T&&>(cell);
}

using SyncMutex = std::mutex;
using SyncCondVar = std::condition_variable;

}  // namespace pldp

#define PLDP_PROTOCOL_ASSERT(cond) assert(cond)

#endif  // PLDP_MODEL_CHECK

#endif  // PLDP_COMMON_ATOMIC_H_
