// Copyright 2026 The PLDP Authors.
//
// Small string utilities used across modules (CSV I/O, pattern parsing,
// report formatting). Kept dependency-free.

#ifndef PLDP_COMMON_STRINGS_H_
#define PLDP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pldp {

/// Splits `s` on `sep`. Adjacent separators yield empty fields; an empty
/// input yields a single empty field (CSV semantics).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a double; rejects trailing junk and empty input.
StatusOr<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; rejects trailing junk and empty input.
StatusOr<int64_t> ParseInt64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace pldp

#endif  // PLDP_COMMON_STRINGS_H_
