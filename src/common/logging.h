// Copyright 2026 The PLDP Authors.
//
// Minimal leveled logging for library diagnostics. Streams to stderr;
// the threshold is process-global and settable by applications
// (benchmark harnesses silence INFO, tests raise it for debugging).
// The initial threshold honors the PLDP_LOG_LEVEL environment variable
// ("debug"/"info"/"warning"/"error"/"off" or 0-4); default is warning.

#ifndef PLDP_COMMON_LOGGING_H_
#define PLDP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pldp {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Current process-global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Collects one log line and emits it on destruction (RAII), matching the
/// LOG(INFO) << ... idiom without macros leaking state.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pldp

#define PLDP_LOG(severity)                                      \
  ::pldp::internal::LogMessage(::pldp::LogLevel::k##severity,   \
                               __FILE__, __LINE__)

#endif  // PLDP_COMMON_LOGGING_H_
