// Copyright 2026 The PLDP Authors.
//
// Portable Clang Thread Safety Analysis annotations, plus the two
// capability types the runtime annotates with:
//
//   - `Mutex` / `MutexLock`: a zero-overhead annotated wrapper around
//     std::mutex / std::lock_guard. libstdc++'s std::mutex carries no
//     capability attributes, so guarding members with a bare std::mutex
//     makes -Wthread-safety silently vacuous; the wrapper is the canonical
//     fix (see the "mutex.h" example in the Clang TSA documentation).
//   - `ThreadRole`: a zero-size, zero-cost capability token modelling
//     thread confinement ("the shard's worker thread", "the single ingest
//     producer"). It is not a lock — Acquire/Release/Assert generate no
//     code. A thread's entry point Acquires the role; functions that must
//     only run on that thread take PLDP_REQUIRES(role); public entry
//     points whose caller contracts promise confinement (e.g. "single
//     producer thread") Assert the role, turning the documented contract
//     into a machine-checked one for everything downstream.
//
// The macros expand to clang attributes under clang and to nothing under
// GCC/MSVC, so annotated code builds everywhere; only clang checks it.
// CI compiles the clang legs with -Wthread-safety -Werror=thread-safety.
//
// Annotation discipline (see README "Static analysis"):
//   - every member guarded by a Mutex is PLDP_GUARDED_BY(mu_);
//   - every member confined to one thread is PLDP_GUARDED_BY(role_);
//   - private helpers running under a lock/role take PLDP_REQUIRES(...);
//   - orchestrator handoffs (absorbing worker state after a join) acquire
//     the worker's role explicitly, with a comment citing the join.
//
// `PLDP_HOT` marks per-event-path functions. It expands to a clang
// `annotate` attribute (queryable by tooling) and is the marker
// tools/lint_hotpath.py keys on: bodies of PLDP_HOT functions must not
// heap-allocate, construct std::string, or take locks. See the lint for
// the enforced rules and the `hotpath-allow:` escape hatch.

#ifndef PLDP_COMMON_THREAD_ANNOTATIONS_H_
#define PLDP_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define PLDP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PLDP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define PLDP_CAPABILITY(x) PLDP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define PLDP_SCOPED_CAPABILITY \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define PLDP_GUARDED_BY(x) PLDP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PLDP_PT_GUARDED_BY(x) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define PLDP_ACQUIRED_BEFORE(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define PLDP_ACQUIRED_AFTER(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define PLDP_REQUIRES(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define PLDP_REQUIRES_SHARED(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define PLDP_ACQUIRE(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define PLDP_ACQUIRE_SHARED(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define PLDP_RELEASE(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define PLDP_RELEASE_SHARED(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define PLDP_TRY_ACQUIRE(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define PLDP_EXCLUDES(...) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define PLDP_ASSERT_CAPABILITY(x) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define PLDP_RETURN_CAPABILITY(x) \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define PLDP_NO_THREAD_SAFETY_ANALYSIS \
  PLDP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// Hot-path marker: the function runs once (or more) per event in steady
// state. Enforced by tools/lint_hotpath.py (no heap allocation, no
// std::string construction, no lock acquisition in the body); under clang
// the annotate attribute additionally makes the set queryable by AST
// tooling (clang-query: functionDecl(hasAttr(annotate("pldp_hot")))).
#if defined(__clang__)
#define PLDP_HOT __attribute__((annotate("pldp_hot")))
#else
#define PLDP_HOT
#endif

namespace pldp {

/// Annotated drop-in for std::mutex. Same size, same codegen; the
/// attributes are what let -Wthread-safety connect PLDP_GUARDED_BY
/// members to the lock protecting them.
class PLDP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PLDP_ACQUIRE() { mu_.lock(); }
  void unlock() PLDP_RELEASE() { mu_.unlock(); }
  bool try_lock() PLDP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the mutex is held without acquiring it — for
  /// call paths whose caller provably holds it in ways the intraprocedural
  /// analysis cannot see. Prefer PLDP_REQUIRES.
  void AssertHeld() const PLDP_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

/// Annotated scoped lock (std::lock_guard shape — no unlock before scope
/// exit, which keeps the analysis exact).
class PLDP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PLDP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PLDP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Zero-cost capability token modelling thread confinement (see file
/// comment). Acquire/Release mark the owning thread's entry/exit; Assert
/// states a caller contract ("this is the single producer thread") at a
/// public entry point so the body and its callees are checked against it.
class PLDP_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() PLDP_ACQUIRE() {}
  void Release() PLDP_RELEASE() {}
  void Assert() const PLDP_ASSERT_CAPABILITY(this) {}
};

}  // namespace pldp

#endif  // PLDP_COMMON_THREAD_ANNOTATIONS_H_
