// Copyright 2026 The PLDP Authors.

#include "obs/health.h"

#include <cstdio>
#include <sstream>

namespace pldp {
namespace obs {

const char* HealthStateName(PipelineHealth::State state) {
  switch (state) {
    case PipelineHealth::State::kHealthy:
      return "healthy";
    case PipelineHealth::State::kDegraded:
      return "degraded";
    case PipelineHealth::State::kStalled:
      return "stalled";
  }
  return "unknown";
}

std::string PipelineHealth::Describe() const {
  std::ostringstream out;
  out << HealthStateName(state) << " (" << shards.size() << " shards, "
      << groups.size() << " merge groups";
  if (!issues.empty()) {
    out << "; " << issues.size() << " issue" << (issues.size() == 1 ? "" : "s");
  }
  out << ")";
  return out.str();
}

void FinalizeHealth(PipelineHealth* health, const HealthThresholds& t) {
  health->state = PipelineHealth::State::kHealthy;
  health->issues.clear();
  for (const PipelineHealth::ShardRow& row : health->shards) {
    if (row.saturation >= t.degraded_saturation) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s shard %zu queue at %.0f%% capacity (%zu/%zu)",
                    row.lane.c_str(), row.shard, row.saturation * 100.0,
                    row.queue_depth, row.queue_capacity);
      health->issues.push_back(buf);
      if (health->state == PipelineHealth::State::kHealthy) {
        health->state = PipelineHealth::State::kDegraded;
      }
    }
  }
  for (const PipelineHealth::GroupRow& row : health->groups) {
    // A reorder buffer near its credit bound means producers are (or are
    // about to start) spinning on exhausted credits: stage 2 is not keeping
    // up and backpressure is propagating upstream.
    if (row.reorder_capacity > 0 &&
        static_cast<double>(row.reorder_depth) /
                static_cast<double>(row.reorder_capacity) >=
            t.degraded_saturation) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "%s group '%s' merge %zu reorder buffer at %llu/%llu "
                    "(credit exhaustion imminent)",
                    row.lane.c_str(), row.group.c_str(), row.merge_shard,
                    static_cast<unsigned long long>(row.reorder_depth),
                    static_cast<unsigned long long>(row.reorder_capacity));
      health->issues.push_back(buf);
      if (health->state == PipelineHealth::State::kHealthy) {
        health->state = PipelineHealth::State::kDegraded;
      }
    }
    // A large lag with nothing buffered just means the pipeline is idle; a
    // large lag WITH buffered events means the merge cannot advance — some
    // producer lane stopped delivering watermarks.
    if (row.watermark_lag > t.stall_lag_events && row.reorder_depth > 0) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "%s group '%s' merge %zu stalled: watermark lag %llu with "
                    "%llu events buffered",
                    row.lane.c_str(), row.group.c_str(), row.merge_shard,
                    static_cast<unsigned long long>(row.watermark_lag),
                    static_cast<unsigned long long>(row.reorder_depth));
      health->issues.push_back(buf);
      health->state = PipelineHealth::State::kStalled;
    }
  }
}

std::string RenderHealthJson(const PipelineHealth& health) {
  std::ostringstream out;
  out << "{\"state\":\"" << HealthStateName(health.state) << "\",\"shards\":[";
  for (size_t i = 0; i < health.shards.size(); ++i) {
    const PipelineHealth::ShardRow& row = health.shards[i];
    if (i != 0) out << ",";
    char sat[32];
    std::snprintf(sat, sizeof(sat), "%.4f", row.saturation);
    out << "{\"lane\":\"" << row.lane << "\",\"shard\":" << row.shard
        << ",\"queue_depth\":" << row.queue_depth
        << ",\"queue_capacity\":" << row.queue_capacity
        << ",\"saturation\":" << sat << "}";
  }
  out << "],\"groups\":[";
  for (size_t i = 0; i < health.groups.size(); ++i) {
    const PipelineHealth::GroupRow& row = health.groups[i];
    if (i != 0) out << ",";
    out << "{\"lane\":\"" << row.lane << "\",\"group\":\"" << row.group
        << "\",\"merge_shard\":" << row.merge_shard
        << ",\"watermark_lag\":" << row.watermark_lag
        << ",\"reorder_depth\":" << row.reorder_depth
        << ",\"reorder_capacity\":" << row.reorder_capacity << "}";
  }
  out << "],\"issues\":[";
  for (size_t i = 0; i < health.issues.size(); ++i) {
    if (i != 0) out << ",";
    std::string escaped;
    for (char c : health.issues[i]) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    out << "\"" << escaped << "\"";
  }
  out << "]}";
  return out.str();
}

}  // namespace obs
}  // namespace pldp
