// Copyright 2026 The PLDP Authors.
//
// Unified telemetry: a process-local metrics registry with typed,
// allocation-free-on-the-hot-path instruments.
//
// Instruments follow the PR 4 bind-at-registration discipline: every
// Counter/Gauge/Histogram is registered ONCE at topology build time (the
// registry hands out stable pointers), and hot-path updates are single
// relaxed atomic operations on cache-line-padded slots — no locks, no
// allocation, no stringly-keyed lookups anywhere near a worker thread.
// Registration and Snapshot() take a mutex; both run on the orchestrator
// or a scrape thread, never on the data plane.
//
//   - `Counter`: monotonically increasing uint64 (events, waits, windows).
//   - `Gauge`: instantaneous double (queue depths, budget remainders);
//     snapshot-time gauges are refreshed by the owning engine right before
//     the registry snapshot, from accessors that are already atomic.
//   - `Histogram`: fixed-bucket log-scale distribution — bucket i counts
//     values <= 2^i (the last bucket is +Inf), so a nanosecond latency
//     histogram spans 1ns..~4.5min in 38 buckets with one CLZ and one
//     relaxed fetch_add per Record. No floats, no dynamic buckets.
//
// `MetricsSnapshot` is the stable exposition struct: families grouped by
// name, each sample carrying its label set and (for histograms) per-bucket
// counts plus count/sum and quantile estimation. `RenderPrometheusText`
// emits Prometheus exposition format 0.0.4; `RenderJson` a stable JSON
// document. Both operate on the snapshot only — serialization never
// touches live instruments.

#ifndef PLDP_OBS_METRICS_H_
#define PLDP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace pldp {
namespace obs {

/// Label set of one instrument, in registration order (rendered verbatim).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Monotonic counter. One cache line per instrument so two shards
/// incrementing their own counters never false-share.
class alignas(64) Counter {
 public:
  // order: relaxed; standalone monotonic telemetry counter — it never
  // publishes other memory, and scrape-time readers tolerate skew.
  PLDP_HOT void Inc(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  // order: relaxed; see Inc().
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous value (doubles, so privacy budgets fit). Set() is a plain
/// store; Add() is a CAS loop — fine for its callers (subject creation,
/// snapshot-time refresh), not meant for per-event paths.
class alignas(64) Gauge {
 public:
  // order: relaxed; a gauge is one standalone value with no ordering
  // relationship to other memory.
  PLDP_HOT void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // order: relaxed on the read and on both CAS orders; the loop only
    // needs RMW atomicity, not publication.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  // order: relaxed; see Set().
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram with power-of-two buckets: bucket i counts values
/// <= 2^i for i in [0, kBuckets-2]; the last bucket is +Inf. Record is one
/// CLZ plus three relaxed fetch_adds — allocation-free and wait-free.
class alignas(64) Histogram {
 public:
  /// 38 finite power-of-two bounds (2^0 .. 2^37 ns ~ 2.3 min) + overflow.
  static constexpr size_t kBuckets = 39;

  // A scrape may see count/sum/bins mid-update — accepted, documented
  // in the exposition layer — so no release pairing is needed.
  // order: relaxed; the three adds are independent telemetry counters.
  PLDP_HOT void Record(uint64_t value) {
    bins_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  // order: relaxed; scrape-time reads of the counters above.
  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  // order: relaxed; see TotalCount().
  uint64_t BinCount(size_t i) const {
    return bins_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of finite bucket i (2^i). The last bucket has no finite
  /// bound.
  static uint64_t UpperBound(size_t i) { return uint64_t{1} << i; }

  PLDP_HOT static size_t BucketOf(uint64_t value) {
    if (value <= 1) return 0;
    const size_t bits = 64 - static_cast<size_t>(CountLeadingZeros(value - 1));
    return bits < kBuckets - 1 ? bits : kBuckets - 1;
  }

 private:
  PLDP_HOT static int CountLeadingZeros(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_clzll(v);
#else
    int n = 0;
    for (uint64_t bit = uint64_t{1} << 63; bit != 0 && !(v & bit); bit >>= 1) {
      ++n;
    }
    return n;
#endif
  }

  std::atomic<uint64_t> bins_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Monotonic wall-independent clock read, in nanoseconds — the latency
/// histograms' time base (one call per event on instrumented hot paths).
uint64_t MonotonicNowNs();

/// Frozen view of one histogram: per-bucket (non-cumulative) counts
/// aligned with `upper_bounds` plus one trailing +Inf bucket.
struct HistogramData {
  std::vector<double> upper_bounds;  ///< finite bounds; counts has one more
  std::vector<uint64_t> counts;      ///< per-bucket, counts.back() = +Inf bin
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Quantile estimate (q in [0,1]) by linear interpolation within the
  /// containing bucket. 0 when the histogram is empty.
  double Quantile(double q) const;
};

/// One (label set, value) sample of a family.
struct MetricSample {
  MetricLabels labels;
  /// Counters and gauges.
  double value = 0.0;
  /// Histograms only (empty otherwise).
  HistogramData histogram;
};

/// All samples sharing one metric name.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<MetricSample> samples;
};

/// The stable exposition struct Pipeline::MetricsSnapshot() returns.
struct MetricsSnapshot {
  std::vector<MetricFamily> families;

  /// Family by name; nullptr when absent.
  const MetricFamily* Find(const std::string& name) const;
};

/// Registry of instruments. Registration returns stable pointers (each
/// instrument is its own heap slot, never reallocated); same-name
/// registrations with distinct labels form one family and must agree on
/// type (a mismatch returns nullptr — a wiring bug surfaced loudly at
/// build time, not a silent family corruption).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* AddCounter(const std::string& name, const std::string& help,
                      MetricLabels labels = {}) PLDP_EXCLUDES(mu_);
  Gauge* AddGauge(const std::string& name, const std::string& help,
                  MetricLabels labels = {}) PLDP_EXCLUDES(mu_);
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          MetricLabels labels = {}) PLDP_EXCLUDES(mu_);

  size_t instrument_count() const PLDP_EXCLUDES(mu_);

  /// Freezes every instrument's current value into the exposition struct.
  /// Safe from any thread, concurrent with hot-path updates (relaxed
  /// reads; a snapshot is a consistent-enough point-in-time view, not a
  /// linearizable cut).
  MetricsSnapshot Snapshot() const PLDP_EXCLUDES(mu_);

 private:
  struct Entry {
    MetricType type;
    std::string name;
    std::string help;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* AddEntry(MetricType type, const std::string& name,
                  const std::string& help, MetricLabels labels)
      PLDP_REQUIRES(mu_);

  /// Guards registration (entries_ growth). Hot-path updates go through
  /// the stable instrument pointers handed out at registration and never
  /// touch the registry, so they need no lock — the wait-free half of the
  /// registration/update split.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_ PLDP_GUARDED_BY(mu_);
};

/// Prometheus text exposition format 0.0.4: # HELP / # TYPE headers,
/// cumulative `_bucket{le=...}` + `_sum` + `_count` for histograms.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// Stable JSON rendering: {"families":[{name,type,help,samples:[...]}]}.
/// Histogram samples carry count/sum/buckets plus p50/p99/p999 estimates.
std::string RenderJson(const MetricsSnapshot& snapshot);

/// Merges every sample of a histogram family into one distribution (e.g.
/// the per-shard latency histograms into a pipeline-wide one). Empty data
/// when `family` is null or not a histogram family.
HistogramData AggregateHistogram(const MetricFamily* family);

/// Sum of a counter/gauge family's sample values (0 when null).
double SumSamples(const MetricFamily* family);

}  // namespace obs
}  // namespace pldp

#endif  // PLDP_OBS_METRICS_H_
