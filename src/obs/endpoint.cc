// Copyright 2026 The PLDP Authors.

#include "obs/endpoint.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace pldp {
namespace obs {
namespace {

/// Reads until the end of the request headers (or the buffer cap) and
/// returns the request line's path, empty on malformed input.
std::string ReadRequestPath(int fd) {
  char buf[2048];
  size_t used = 0;
  while (used < sizeof(buf) - 1) {
    const ssize_t n = ::recv(fd, buf + used, sizeof(buf) - 1 - used, 0);
    if (n <= 0) break;
    used += static_cast<size_t>(n);
    buf[used] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  buf[used] = '\0';
  // Request line: METHOD SP PATH SP VERSION.
  const char* sp1 = std::strchr(buf, ' ');
  if (sp1 == nullptr) return "";
  const char* sp2 = std::strchr(sp1 + 1, ' ');
  if (sp2 == nullptr) return "";
  if (std::strncmp(buf, "GET ", 4) != 0) return "";
  return std::string(sp1 + 1, sp2);
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

void WriteResponse(int fd, int status, const char* status_text,
                   const char* content_type, const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + status_text +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  WriteAll(fd, head);
  WriteAll(fd, body);
}

}  // namespace

TextEndpoint::TextEndpoint(Routes routes) : routes_(std::move(routes)) {}

TextEndpoint::~TextEndpoint() { Stop(); }

Status TextEndpoint::Start(uint16_t port) {
  lifecycle_role_.Assert();
  // order: acquire pairs with Stop()'s exchange, so a restart observes
  // the previous teardown's writes (closed fd, cleared port).
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("endpoint already running");
  }
  if (!routes_.metrics_text) {
    return Status::InvalidArgument("metrics_text route is required");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind: " + err);
  }
  if (::listen(listen_fd_, 8) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    // order: release publishes the bound port to port() acquire readers.
    port_.store(ntohs(addr.sin_port), std::memory_order_release);
  }
  // order: release publishes listen_fd_/routes_ setup to Serve()'s
  // acquire load (the thread ctor already sequences this handoff; the
  // release also covers concurrent port()/Stop() observers).
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&TextEndpoint::Serve, this);
  // order: relaxed; same-thread log of the value stored above.
  PLDP_LOG(Info) << "metrics endpoint listening on port "
                 << port_.load(std::memory_order_relaxed);
  return Status::OK();
}

void TextEndpoint::Stop() {
  lifecycle_role_.Assert();
  // order: acq_rel — acquire pairs with Start()'s release so we tear
  // down the fd that run published; release hands the flip (plus any
  // prior writes) to Serve()'s acquire loads and a later Start().
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() unblocks the accept() call so the thread can observe the
  // running_ flip and exit. The fd is closed only AFTER the join: closing
  // first would free the descriptor number while the accept thread may
  // still be entering accept(listen_fd_), and the kernel can hand the same
  // number to any concurrently opened socket or file — the loop would then
  // accept() on an unrelated descriptor. Pinned by
  // tests/obs_endpoint_race_test.cc.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // order: release publishes the cleared port to port() acquire readers.
  port_.store(0, std::memory_order_release);
}

void TextEndpoint::Serve() {
  // order: acquire pairs with Stop()'s acq_rel exchange — observing the
  // flip must also order the shutdown() before our next accept().
  while (running_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      // order: acquire; same pairing as the loop condition above.
      if (!running_.load(std::memory_order_acquire)) break;
      continue;
    }
    HandleConnection(client);
    ::close(client);
  }
}

void TextEndpoint::HandleConnection(int client_fd) {
  const std::string path = ReadRequestPath(client_fd);
  if (path == "/metrics") {
    WriteResponse(client_fd, 200, "OK",
                  "text/plain; version=0.0.4; charset=utf-8",
                  routes_.metrics_text());
  } else if (path == "/metrics.json" && routes_.metrics_json) {
    WriteResponse(client_fd, 200, "OK", "application/json",
                  routes_.metrics_json());
  } else if (path == "/healthz" && routes_.health_json) {
    WriteResponse(client_fd, 200, "OK", "application/json",
                  routes_.health_json());
  } else if (path.empty()) {
    WriteResponse(client_fd, 400, "Bad Request", "text/plain", "bad request\n");
  } else {
    WriteResponse(client_fd, 404, "Not Found", "text/plain", "not found\n");
  }
}

}  // namespace obs
}  // namespace pldp
