// Copyright 2026 The PLDP Authors.
//
// Instrument bundles the runtime stages accept at wiring time. Every field
// is a nullable pointer into a `MetricsRegistry`; a stage guards each
// update with a null check, so an un-instrumented pipeline pays one
// predictable branch per site and nothing else. Bundles are plain structs
// copied by value — the registry owns the instruments, the stages only
// borrow them, and all wiring happens before `Start()` (no hot-path
// publication races).

#ifndef PLDP_OBS_INSTRUMENTS_H_
#define PLDP_OBS_INSTRUMENTS_H_

#include "obs/metrics.h"

namespace pldp {
namespace obs {

/// Per-shard data-plane instruments (runtime/shard.h).
struct ShardInstruments {
  Counter* events = nullptr;              ///< events popped & processed
  Counter* backpressure_waits = nullptr;  ///< producer-side full-queue spins
  Histogram* batch_size = nullptr;        ///< events per pop burst
  Histogram* process_latency_ns = nullptr;  ///< per-event engine latency
  Gauge* queue_depth = nullptr;           ///< snapshot-time ApproxSize
  Counter* parks = nullptr;               ///< idle worker cv parks
  Counter* wakes = nullptr;               ///< doorbell slow-path notifies
};

/// Per-emitter exchange-lane instruments (runtime/exchange.h). One bundle
/// per (group, producer shard) emitter row.
struct ExchangeInstruments {
  Counter* forwarded = nullptr;           ///< events pushed into lanes
  Counter* watermarks = nullptr;          ///< watermark broadcasts
  Counter* backpressure_waits = nullptr;  ///< full-lane spins on emit
  Counter* credit_exhausted_waits = nullptr;  ///< flow-control credit stalls
  Gauge* lane_depth = nullptr;            ///< snapshot-time sum of lane sizes
};

/// Per-merge-shard instruments (runtime/merge_shard.h).
struct MergeInstruments {
  Counter* events_received = nullptr;  ///< popped from exchange lanes
  Counter* events_merged = nullptr;    ///< released to the engine in order
  Histogram* merge_latency_ns = nullptr;  ///< per-released-event latency
  Gauge* reorder_depth = nullptr;      ///< snapshot-time buffered events
  Gauge* reorder_capacity = nullptr;   ///< hard bound (sum of lane credits)
  Gauge* watermark_lag = nullptr;  ///< snapshot-time ingest vs safe seq
  Counter* parks = nullptr;        ///< idle worker cv parks
  Counter* wakes = nullptr;        ///< doorbell slow-path notifies
};

/// Private-lane publisher instruments (ppm/subject_publisher.h).
struct PublisherInstruments {
  Counter* windows = nullptr;   ///< private windows finalized
  Gauge* subjects = nullptr;    ///< distinct subjects with live state
};

}  // namespace obs
}  // namespace pldp

#endif  // PLDP_OBS_INSTRUMENTS_H_
