// Copyright 2026 The PLDP Authors.
//
// Pipeline-wide health roll-up computed from live runtime state: per-shard
// queue saturation and per-group merge watermark lag, classified against
// caller thresholds into healthy / degraded / stalled. Engines fill the
// raw rows via `CollectHealth`; `FinalizeHealth` applies the thresholds
// and writes the verdict. Consumers: `Describe()`-style tooling, the
// `/healthz` endpoint route, and future load-shedding policies.

#ifndef PLDP_OBS_HEALTH_H_
#define PLDP_OBS_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pldp {
namespace obs {

/// Classification knobs. Defaults suit the in-tree examples: a lane is
/// "degraded" when its input queue sits above 90% capacity, "stalled"
/// when a merge group's watermark lags the ingest frontier by more than
/// `stall_lag_events` sequence numbers while events are still buffered.
struct HealthThresholds {
  double degraded_saturation = 0.90;
  uint64_t stall_lag_events = 1u << 20;
};

struct PipelineHealth {
  enum class State { kHealthy, kDegraded, kStalled };

  struct ShardRow {
    std::string lane;   ///< "plain" or "private"
    size_t shard = 0;
    size_t queue_depth = 0;
    size_t queue_capacity = 0;
    double saturation = 0.0;  ///< depth / capacity
  };

  struct GroupRow {
    std::string lane;
    std::string group;  ///< correlation-key id ("default" for unkeyed)
    size_t merge_shard = 0;
    uint64_t watermark_lag = 0;   ///< ingest frontier − safe watermark
    uint64_t reorder_depth = 0;   ///< events waiting in the reorder buffer
    /// Hard reorder-buffer bound (sum of the input lanes' credit budgets);
    /// 0 when the engine predates flow control.
    uint64_t reorder_capacity = 0;
  };

  State state = State::kHealthy;
  std::vector<ShardRow> shards;
  std::vector<GroupRow> groups;
  /// Human-readable findings (one per threshold breach), empty if healthy.
  std::vector<std::string> issues;

  /// One-line summary, e.g. "healthy (6 shards, 3 merge groups)".
  std::string Describe() const;
};

const char* HealthStateName(PipelineHealth::State state);

/// Applies thresholds to the collected rows: sets `state` and `issues`.
void FinalizeHealth(PipelineHealth* health, const HealthThresholds& t);

/// Stable JSON document for the /healthz endpoint route.
std::string RenderHealthJson(const PipelineHealth& health);

}  // namespace obs
}  // namespace pldp

#endif  // PLDP_OBS_HEALTH_H_
