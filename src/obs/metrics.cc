// Copyright 2026 The PLDP Authors.

#include "obs/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace pldp {
namespace obs {
namespace {

/// Prometheus label values escape backslash, double-quote, and newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// JSON string escaping (control chars, quote, backslash).
std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip-ish double rendering: integers without the trailing
/// `.0` Prometheus tolerates either way; %g otherwise.
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ",";
    first = false;
    out += kv.first;
    out += "=\"";
    out += EscapeLabelValue(kv.second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Like RenderLabels but with one extra label appended (`le` for buckets).
std::string RenderLabelsWith(const MetricLabels& labels,
                             const std::string& key,
                             const std::string& value) {
  MetricLabels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double HistogramData::Quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      const double hi = i < upper_bounds.size()
                            ? upper_bounds[i]
                            : upper_bounds.empty()
                                  ? 0.0
                                  : upper_bounds.back() * 2.0;
      const double lo = i == 0 ? 0.0 : upper_bounds[i - 1];
      const uint64_t below = cumulative - counts[i];
      const double within =
          (rank - static_cast<double>(below)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * (within < 0.0 ? 0.0 : within);
    }
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

const MetricFamily* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricFamily& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

MetricsRegistry::Entry* MetricsRegistry::AddEntry(MetricType type,
                                                  const std::string& name,
                                                  const std::string& help,
                                                  MetricLabels labels) {
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->type != type) return nullptr;
    if (entry->name == name && entry->labels == labels) return nullptr;
  }
  entries_.push_back(std::unique_ptr<Entry>(new Entry{
      type, name, help, std::move(labels), nullptr, nullptr, nullptr}));
  return entries_.back().get();
}

// The instrument is created while the registration lock is still held: a
// Snapshot racing the registration (scrape endpoint up before Build()
// finishes) must never observe an Entry whose instrument pointer is still
// null — PLDP_REQUIRES(mu_) on AddEntry is what pins this shape.

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help,
                                     MetricLabels labels) {
  MutexLock lock(mu_);
  Entry* entry = AddEntry(MetricType::kCounter, name, help, std::move(labels));
  if (entry == nullptr) return nullptr;
  entry->counter.reset(new Counter());
  return entry->counter.get();
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help,
                                 MetricLabels labels) {
  MutexLock lock(mu_);
  Entry* entry = AddEntry(MetricType::kGauge, name, help, std::move(labels));
  if (entry == nullptr) return nullptr;
  entry->gauge.reset(new Gauge());
  return entry->gauge.get();
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         MetricLabels labels) {
  MutexLock lock(mu_);
  Entry* entry =
      AddEntry(MetricType::kHistogram, name, help, std::move(labels));
  if (entry == nullptr) return nullptr;
  entry->histogram.reset(new Histogram());
  return entry->histogram.get();
}

size_t MetricsRegistry::instrument_count() const {
  MutexLock lock(mu_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  // Families keep first-registration order; samples keep registration order
  // within a family — exposition output is deterministic run to run.
  std::map<std::string, size_t> family_index;
  for (const auto& entry : entries_) {
    auto it = family_index.find(entry->name);
    if (it == family_index.end()) {
      it = family_index.emplace(entry->name, snapshot.families.size()).first;
      MetricFamily family;
      family.name = entry->name;
      family.help = entry->help;
      family.type = entry->type;
      snapshot.families.push_back(std::move(family));
    }
    MetricFamily& family = snapshot.families[it->second];
    MetricSample sample;
    sample.labels = entry->labels;
    switch (entry->type) {
      case MetricType::kCounter:
        sample.value = static_cast<double>(entry->counter->Value());
        break;
      case MetricType::kGauge:
        sample.value = entry->gauge->Value();
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry->histogram;
        HistogramData data;
        data.upper_bounds.reserve(Histogram::kBuckets - 1);
        data.counts.reserve(Histogram::kBuckets);
        for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
          data.upper_bounds.push_back(
              static_cast<double>(Histogram::UpperBound(i)));
          data.counts.push_back(h.BinCount(i));
        }
        data.counts.push_back(h.BinCount(Histogram::kBuckets - 1));
        data.count = h.TotalCount();
        data.sum = h.Sum();
        sample.histogram = std::move(data);
        break;
      }
    }
    family.samples.push_back(std::move(sample));
  }
  return snapshot;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricFamily& family : snapshot.families) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " + std::string(TypeName(family.type)) +
           "\n";
    for (const MetricSample& sample : family.samples) {
      if (family.type == MetricType::kHistogram) {
        const HistogramData& h = sample.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.upper_bounds.size(); ++i) {
          cumulative += h.counts[i];
          out += family.name + "_bucket" +
                 RenderLabelsWith(sample.labels, "le",
                                  FormatNumber(h.upper_bounds[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += family.name + "_bucket" +
               RenderLabelsWith(sample.labels, "le", "+Inf") + " " +
               std::to_string(h.count) + "\n";
        out += family.name + "_sum" + RenderLabels(sample.labels) + " " +
               std::to_string(h.sum) + "\n";
        out += family.name + "_count" + RenderLabels(sample.labels) + " " +
               std::to_string(h.count) + "\n";
      } else {
        out += family.name + RenderLabels(sample.labels) + " " +
               FormatNumber(sample.value) + "\n";
      }
    }
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"families\":[";
  bool first_family = true;
  for (const MetricFamily& family : snapshot.families) {
    if (!first_family) out << ",";
    first_family = false;
    out << "{\"name\":\"" << EscapeJson(family.name) << "\",\"type\":\""
        << TypeName(family.type) << "\",\"help\":\"" << EscapeJson(family.help)
        << "\",\"samples\":[";
    bool first_sample = true;
    for (const MetricSample& sample : family.samples) {
      if (!first_sample) out << ",";
      first_sample = false;
      out << "{\"labels\":{";
      bool first_label = true;
      for (const auto& kv : sample.labels) {
        if (!first_label) out << ",";
        first_label = false;
        out << "\"" << EscapeJson(kv.first) << "\":\""
            << EscapeJson(kv.second) << "\"";
      }
      out << "}";
      if (family.type == MetricType::kHistogram) {
        const HistogramData& h = sample.histogram;
        out << ",\"count\":" << h.count << ",\"sum\":" << h.sum
            << ",\"p50\":" << FormatNumber(h.Quantile(0.50))
            << ",\"p99\":" << FormatNumber(h.Quantile(0.99))
            << ",\"p999\":" << FormatNumber(h.Quantile(0.999))
            << ",\"buckets\":[";
        for (size_t i = 0; i < h.counts.size(); ++i) {
          if (i != 0) out << ",";
          out << h.counts[i];
        }
        out << "]";
      } else {
        out << ",\"value\":" << FormatNumber(sample.value);
      }
      out << "}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

HistogramData AggregateHistogram(const MetricFamily* family) {
  HistogramData merged;
  if (family == nullptr || family->type != MetricType::kHistogram) {
    return merged;
  }
  for (const MetricSample& sample : family->samples) {
    const HistogramData& h = sample.histogram;
    if (merged.counts.empty()) {
      merged.upper_bounds = h.upper_bounds;
      merged.counts.assign(h.counts.size(), 0);
    }
    if (h.counts.size() != merged.counts.size()) continue;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      merged.counts[i] += h.counts[i];
    }
    merged.count += h.count;
    merged.sum += h.sum;
  }
  return merged;
}

double SumSamples(const MetricFamily* family) {
  if (family == nullptr) return 0.0;
  double total = 0.0;
  for (const MetricSample& sample : family->samples) total += sample.value;
  return total;
}

}  // namespace obs
}  // namespace pldp
