// Copyright 2026 The PLDP Authors.
//
// A deliberately tiny blocking scrape endpoint: one listener socket, one
// accept thread, one request served at a time. This is NOT a web server —
// it exists so `curl http://host:port/metrics` and a Prometheus scraper
// work against the service examples with zero dependencies. Routes:
//
//   GET /metrics        -> Prometheus text exposition (format 0.0.4)
//   GET /metrics.json   -> obs::RenderJson document
//   GET /healthz        -> obs::RenderHealthJson document
//
// The payload producers are caller-supplied callbacks invoked per request
// on the accept thread; they must be thread-safe against the running
// pipeline (Pipeline::MetricsSnapshot and Health are).

#ifndef PLDP_OBS_ENDPOINT_H_
#define PLDP_OBS_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace pldp {
namespace obs {

class TextEndpoint {
 public:
  /// Route payload producer; returns the response body.
  using Producer = std::function<std::string()>;

  struct Routes {
    Producer metrics_text;  ///< /metrics (required)
    Producer metrics_json;  ///< /metrics.json (optional; 404 when absent)
    Producer health_json;   ///< /healthz (optional; 404 when absent)
  };

  explicit TextEndpoint(Routes routes);
  ~TextEndpoint();

  TextEndpoint(const TextEndpoint&) = delete;
  TextEndpoint& operator=(const TextEndpoint&) = delete;

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port — read it back via
  /// port()) and starts the accept thread. Lifecycle calls (Start/Stop/
  /// destructor) must come from one orchestrating thread at a time.
  Status Start(uint16_t port);

  /// Joins the accept thread, then closes the listener. Idempotent.
  void Stop();

  /// The bound port; 0 before Start.
  // order: acquire pairs with Start()'s release store of the bound port.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

 private:
  void Serve();
  void HandleConnection(int client_fd);

  /// Single-orchestrator contract on Start/Stop (asserted, not acquired —
  /// see common/thread_annotations.h on caller-contract roles).
  ThreadRole lifecycle_role_;

  Routes routes_;
  /// Written by the orchestrator only; the accept thread reads it until
  /// its join, which is why Stop() must join before closing/resetting it.
  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::thread accept_thread_ PLDP_GUARDED_BY(lifecycle_role_);
};

}  // namespace obs
}  // namespace pldp

#endif  // PLDP_OBS_ENDPOINT_H_
