// Copyright 2026 The PLDP Authors.

#include "event/value.h"

#include "common/strings.h"

namespace pldp {

std::string_view ValueKindToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kSymbol:
      return "symbol";
  }
  return "unknown";
}

namespace {
Status KindMismatch(ValueKind want, ValueKind got) {
  return Status::InvalidArgument(
      StrFormat("value kind mismatch: want %s, got %s",
                std::string(ValueKindToString(want)).c_str(),
                std::string(ValueKindToString(got)).c_str()));
}
}  // namespace

StatusOr<bool> Value::AsBool() const {
  if (!is_bool()) return KindMismatch(ValueKind::kBool, kind());
  return std::get<bool>(rep_);
}

StatusOr<int64_t> Value::AsInt() const {
  if (!is_int()) return KindMismatch(ValueKind::kInt, kind());
  return std::get<int64_t>(rep_);
}

StatusOr<double> Value::AsDouble() const {
  if (!is_double()) return KindMismatch(ValueKind::kDouble, kind());
  return std::get<double>(rep_);
}

StatusOr<std::string_view> Value::AsStringView() const {
  if (is_string()) return std::string_view(std::get<std::string>(rep_));
  if (is_symbol()) return SymbolNames().NameOf(std::get<Symbol>(rep_).id);
  return KindMismatch(ValueKind::kString, kind());
}

StatusOr<std::string> Value::AsString() const {
  PLDP_ASSIGN_OR_RETURN(std::string_view view, AsStringView());
  return std::string(view);
}

StatusOr<SymbolId> Value::AsSymbol() const {
  if (!is_symbol()) return KindMismatch(ValueKind::kSymbol, kind());
  return std::get<Symbol>(rep_).id;
}

StatusOr<double> Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(rep_));
  if (is_double()) return std::get<double>(rep_);
  return Status::InvalidArgument("value is not numeric");
}

bool Value::operator==(const Value& other) const {
  if (rep_.index() == other.rep_.index()) return rep_ == other.rep_;
  // Cross-kind text equality: an interned symbol equals an owned string
  // with the same content, so interned and legacy events interchange.
  if (is_text() && other.is_text()) {
    return AsStringView().value() == other.AsStringView().value();
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kBool:
      return std::get<bool>(rep_) ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(std::get<int64_t>(rep_));
    case ValueKind::kDouble:
      return StrFormat("%g", std::get<double>(rep_));
    case ValueKind::kString:
      return "\"" + std::get<std::string>(rep_) + "\"";
    case ValueKind::kSymbol:
      return "\"" +
             std::string(SymbolNames().NameOf(std::get<Symbol>(rep_).id)) +
             "\"";
  }
  return "<invalid>";
}

}  // namespace pldp
