// Copyright 2026 The PLDP Authors.

#include "event/event_type.h"

namespace pldp {

StatusOr<EventTypeId> EventTypeRegistry::Register(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return Status::AlreadyExists("event type already registered: " + name);
  }
  EventTypeId id = static_cast<EventTypeId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

EventTypeId EventTypeRegistry::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  EventTypeId id = static_cast<EventTypeId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

StatusOr<EventTypeId> EventTypeRegistry::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return Status::NotFound("unknown event type: " + name);
  }
  return it->second;
}

StatusOr<std::string> EventTypeRegistry::Name(EventTypeId id) const {
  if (id >= names_.size()) {
    return Status::NotFound("unknown event type id: " + std::to_string(id));
  }
  return names_[id];
}

EventTypeRegistry EventTypeRegistry::MakeDense(size_t count,
                                               const std::string& prefix) {
  EventTypeRegistry reg;
  for (size_t i = 0; i < count; ++i) {
    reg.Intern(prefix + std::to_string(i));
  }
  return reg;
}

}  // namespace pldp
