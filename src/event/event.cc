// Copyright 2026 The PLDP Authors.

#include "event/event.h"

#include <utility>

#include "common/strings.h"

namespace pldp {

Event::Event(const Event& other)
    : type_(other.type_),
      timestamp_(other.timestamp_),
      stream_(other.stream_),
      attr_count_(other.attr_count_),
      inline_(other.inline_),
      spill_(other.spill_ == nullptr
                 ? nullptr
                 : std::make_unique<std::vector<Attr>>(*other.spill_)) {}

Event& Event::operator=(const Event& other) {
  if (this == &other) return *this;
  type_ = other.type_;
  timestamp_ = other.timestamp_;
  stream_ = other.stream_;
  attr_count_ = other.attr_count_;
  inline_ = other.inline_;
  if (other.spill_ == nullptr) {
    spill_ = nullptr;
  } else if (spill_ != nullptr) {
    // Reuse the destination's vector (and its capacity) — steady-state
    // copies of spilled events into recycled slots stay allocation-free.
    *spill_ = *other.spill_;
  } else {
    spill_ = std::make_unique<std::vector<Attr>>(*other.spill_);
  }
  return *this;
}

Event::Event(Event&& other) noexcept
    : type_(other.type_),
      timestamp_(other.timestamp_),
      stream_(other.stream_),
      attr_count_(other.attr_count_),
      inline_(std::move(other.inline_)),
      spill_(std::move(other.spill_)) {
  other.attr_count_ = 0;
}

Event& Event::operator=(Event&& other) noexcept {
  if (this == &other) return *this;
  type_ = other.type_;
  timestamp_ = other.timestamp_;
  stream_ = other.stream_;
  attr_count_ = other.attr_count_;
  inline_ = std::move(other.inline_);
  spill_ = std::move(other.spill_);
  other.attr_count_ = 0;
  return *this;
}

void Event::SetAttribute(AttrId id, Value value) {
  if (id == kInvalidAttrId) return;  // table full; nothing sane to key by
  Attr* attrs = attrs_data();
  for (uint32_t i = 0; i < attr_count_; ++i) {
    if (attrs[i].id == id) {
      attrs[i].value = std::move(value);
      return;
    }
  }
  if (spill_ != nullptr) {
    spill_->push_back(Attr{id, std::move(value)});
    ++attr_count_;
    return;
  }
  if (attr_count_ < kInlineAttrCapacity) {
    inline_[attr_count_] = Attr{id, std::move(value)};
    ++attr_count_;
    return;
  }
  // Inline buffer full: spill everything (the rare, documented slow path).
  spill_ = std::make_unique<std::vector<Attr>>();
  spill_->reserve(attr_count_ + 1);
  for (uint32_t i = 0; i < attr_count_; ++i) {
    spill_->push_back(std::move(inline_[i]));
    inline_[i] = Attr{};
  }
  spill_->push_back(Attr{id, std::move(value)});
  ++attr_count_;
}

void Event::SetAttribute(std::string_view name, Value value) {
  SetAttribute(AttrNames().Intern(name), std::move(value));
}

const Value* Event::FindAttribute(AttrId id) const {
  const Attr* attrs = attrs_data();
  for (uint32_t i = 0; i < attr_count_; ++i) {
    if (attrs[i].id == id) return &attrs[i].value;
  }
  return nullptr;
}

const Value* Event::FindAttribute(std::string_view name) const {
  const AttrId id = AttrNames().Find(name);
  return id == kInvalidAttrId ? nullptr : FindAttribute(id);
}

std::optional<Value> Event::GetAttribute(std::string_view name) const {
  const Value* v = FindAttribute(name);
  if (v == nullptr) return std::nullopt;
  return *v;
}

StatusOr<Value> Event::RequireAttribute(std::string_view name) const {
  const Value* v = FindAttribute(name);
  if (v == nullptr) {
    return Status::NotFound("event has no attribute '" + std::string(name) +
                            "'");
  }
  return *v;
}

bool Event::operator==(const Event& other) const {
  if (type_ != other.type_ || timestamp_ != other.timestamp_ ||
      stream_ != other.stream_ || attr_count_ != other.attr_count_) {
    return false;
  }
  const Attr* mine = attrs_data();
  const Attr* theirs = other.attrs_data();
  for (uint32_t i = 0; i < attr_count_; ++i) {
    if (!(mine[i] == theirs[i])) return false;
  }
  return true;
}

std::string Event::ToString(const EventTypeRegistry* registry) const {
  std::string name;
  if (registry != nullptr) {
    auto n = registry->Name(type_);
    name = n.ok() ? n.value() : ("type" + std::to_string(type_));
  } else {
    name = "type" + std::to_string(type_);
  }
  std::string out = StrFormat("%s@%lld", name.c_str(),
                              static_cast<long long>(timestamp_));
  if (attr_count_ > 0) {
    out.push_back('{');
    for (uint32_t i = 0; i < attr_count_; ++i) {
      if (i > 0) out.push_back(',');
      const std::string_view attr_name = attribute_name(i);
      if (attr_name.empty()) {
        out += "attr" + std::to_string(attribute(i).id);
      } else {
        out.append(attr_name.data(), attr_name.size());
      }
      out.push_back('=');
      out += attribute(i).value.ToString();
    }
    out.push_back('}');
  }
  return out;
}

}  // namespace pldp
