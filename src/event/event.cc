// Copyright 2026 The PLDP Authors.

#include "event/event.h"

#include "common/strings.h"

namespace pldp {

void Event::SetAttribute(const std::string& name, Value value) {
  for (auto& [key, val] : attributes_) {
    if (key == name) {
      val = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(name, std::move(value));
}

std::optional<Value> Event::GetAttribute(const std::string& name) const {
  for (const auto& [key, val] : attributes_) {
    if (key == name) return val;
  }
  return std::nullopt;
}

StatusOr<Value> Event::RequireAttribute(const std::string& name) const {
  for (const auto& [key, val] : attributes_) {
    if (key == name) return val;
  }
  return Status::NotFound("event has no attribute '" + name + "'");
}

bool Event::operator==(const Event& other) const {
  return type_ == other.type_ && timestamp_ == other.timestamp_ &&
         stream_ == other.stream_ && attributes_ == other.attributes_;
}

std::string Event::ToString(const EventTypeRegistry* registry) const {
  std::string name;
  if (registry != nullptr) {
    auto n = registry->Name(type_);
    name = n.ok() ? n.value() : ("type" + std::to_string(type_));
  } else {
    name = "type" + std::to_string(type_);
  }
  std::string out = StrFormat("%s@%lld", name.c_str(),
                              static_cast<long long>(timestamp_));
  if (!attributes_.empty()) {
    out.push_back('{');
    for (size_t i = 0; i < attributes_.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += attributes_[i].first;
      out.push_back('=');
      out += attributes_[i].second.ToString();
    }
    out.push_back('}');
  }
  return out;
}

}  // namespace pldp
