// Copyright 2026 The PLDP Authors.
//
// Process-wide interning of attribute names and string payloads — the
// dictionary-encoding half of the zero-allocation data plane.
//
// Events used to carry `std::string` attribute names and `Value` carried
// `std::string` payloads, so every copy through an SPSC lane, exchange
// lane, or staging buffer heap-allocated, and every predicate evaluation
// did string compares. Interning replaces both with dense integer ids, the
// same flyweight move `EventTypeRegistry` makes for event types: names are
// registered once (query registration, dataset construction) and the
// steady-state event path only ever touches ids.
//
// Two tables exist, both process-wide and append-only:
//
//   AttrNames()   attribute names ("cell", "zone")  -> AttrId
//   SymbolNames() string payloads ("downtown")      -> SymbolId
//
// Why process-wide: `Event` is a value type that crosses threads and
// stages; binding at query-registration time (cep/predicate.h,
// cep/correlation_key.h) and at event-construction time must meet in one
// id space without plumbing a registry through every call site. Event-type
// registries stay per-dataset; the attribute vocabulary is program-global
// by nature (a handful of names for the program's lifetime).
//
// Concurrency: `Intern`/`Find` serialize on a mutex — they run at
// registration/construction time, off the engine hot path. `NameOf` and
// `size` are lock-free and allocation-free (they back the hot-path
// `Value::AsStringView` and correlation-key hashing): ids are published
// through an atomic size counter with release/acquire ordering, and
// entries live in fixed-size blocks whose addresses never move once
// published, so a returned `std::string_view` stays valid forever.

#ifndef PLDP_EVENT_SYMBOL_TABLE_H_
#define PLDP_EVENT_SYMBOL_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace pldp {

/// Dense identifier of an interned attribute name (AttrNames()).
using AttrId = uint32_t;

/// Dense identifier of an interned string payload (SymbolNames()).
using SymbolId = uint32_t;

/// Sentinel for "not interned" / failed lookups in either table.
inline constexpr uint32_t kInvalidInternId = static_cast<uint32_t>(-1);
inline constexpr AttrId kInvalidAttrId = kInvalidInternId;
inline constexpr SymbolId kInvalidSymbolId = kInvalidInternId;

/// Append-only name <-> dense-id table with lock-free id -> name reads.
///
/// Registration order defines ids (0, 1, 2, ...). Entries are never
/// removed or mutated, so `NameOf` views are stable for the program's
/// lifetime.
class InternTable {
 public:
  InternTable();
  ~InternTable();

  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;

  /// Get-or-create: returns the existing id or registers a new one.
  /// Returns kInvalidInternId only when the table is full (the configured
  /// budget, or kMaxEntries).
  uint32_t Intern(std::string_view name) PLDP_EXCLUDES(mu_);

  /// Get-or-create with a loud failure mode: like Intern, but exhaustion
  /// (the budget or kMaxEntries) is a ResourceExhausted error naming the
  /// limit instead of a sentinel id. The right call for inputs of
  /// unbounded cardinality — e.g. string payloads arriving off the wire
  /// (stream/stream_io.h's intern-on-decode path).
  StatusOr<uint32_t> TryIntern(std::string_view name) PLDP_EXCLUDES(mu_);

  /// Caps the table at `max_entries` interned names (clamped to
  /// kMaxEntries; 0 restores the default). Already-interned names stay
  /// valid and keep resolving even when they exceed a newly lowered
  /// budget — the budget only stops *new* registrations, so it guards
  /// against unbounded payload cardinality without invalidating ids.
  void SetBudget(size_t max_entries) PLDP_EXCLUDES(mu_);

  /// The active cap on interned entries.
  // order: relaxed; isolated knob, see SetBudget.
  size_t budget() const { return budget_.load(std::memory_order_relaxed); }

  /// Id of `name`, or kInvalidInternId when it was never interned. Unlike
  /// Intern, never grows the table — the right call for lookups that must
  /// not pollute the id space (e.g. Event::FindAttribute by name).
  uint32_t Find(std::string_view name) const PLDP_EXCLUDES(mu_);

  /// Name of `id`; empty view for invalid ids. Lock-free, allocation-free,
  /// and the view is stable forever (entries never move).
  PLDP_HOT std::string_view NameOf(uint32_t id) const;

  /// Number of interned entries. Ids are exactly [0, size()).
  // order: acquire pairs with Intern's release publication of size_.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Hard capacity: 4096 blocks x 1024 entries.
  static constexpr size_t kMaxEntries = size_t{4096} << 10;

 private:
  static constexpr size_t kBlockBits = 10;
  static constexpr size_t kBlockSize = size_t{1} << kBlockBits;  // 1024
  static constexpr size_t kMaxBlocks = kMaxEntries / kBlockSize;

  mutable Mutex mu_;
  /// Active entry cap (<= kMaxEntries). Atomic so budget() is readable
  /// without the mutex; mutations happen under it.
  std::atomic<size_t> budget_{kMaxEntries};
  /// Keys are views into the block storage below (strings never move).
  std::unordered_map<std::string_view, uint32_t> ids_ PLDP_GUARDED_BY(mu_);
  /// Two-level directory: block pointers are published with release stores
  /// and block contents are immutable once `size_` covers them, which is
  /// what makes NameOf lock-free. The mutex serializes writers; the
  /// lock-free reader side (NameOf) is safe through the release/acquire
  /// pairing on size_, which TSA cannot express — hence no GUARDED_BY.
  std::array<std::atomic<std::string*>, kMaxBlocks> blocks_;
  std::atomic<size_t> size_{0};
};

/// The process-wide attribute-name table.
InternTable& AttrNames();

/// The process-wide string-payload (symbol) table.
InternTable& SymbolNames();

}  // namespace pldp

#endif  // PLDP_EVENT_SYMBOL_TABLE_H_
