// Copyright 2026 The PLDP Authors.
//
// The event model of the paper's Section III:
//
//   data stream S^D = (d_1, d_2, ...)    raw tuples from data subjects
//   event stream S^E = (e_1, e_2, ...)   tuples of interest, in temporal order
//
// `Event` represents both: a raw tuple is an event whose type is whatever
// the extraction step assigns. Events carry a timestamp, the id of the
// stream (data subject) that produced them, a type, and optional attributes.
//
// Memory layout (the zero-allocation data plane): attributes are keyed by
// interned `AttrId` (event/symbol_table.h) and stored in a small inline
// buffer of `kInlineAttrCapacity` slots. An event whose attributes fit the
// inline buffer and whose string payloads are interned symbols
// (`Value::Sym`) copies without touching the heap — the property the
// sharded runtime's steady state depends on (every hop through an SPSC
// queue, exchange lane, or staging buffer copies the event). Only events
// with more attributes spill to a heap-allocated vector, and only owned
// `kString` payloads allocate on copy.

#ifndef PLDP_EVENT_EVENT_H_
#define PLDP_EVENT_EVENT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "event/event_type.h"
#include "event/symbol_table.h"
#include "event/value.h"

namespace pldp {

/// Logical time. The unit is dataset-defined (seconds for the taxi
/// simulator, window index for the synthetic generator).
using Timestamp = int64_t;

/// Identifies the originating data stream / data subject.
using StreamId = uint32_t;

inline constexpr StreamId kDefaultStream = 0;

/// One event (or raw data tuple) in a stream.
///
/// Events are value types: cheap to copy (allocation-free in the inline +
/// interned regime above), safely movable, and hashable by content where
/// needed.
class Event {
 public:
  /// Attribute slots held inline before spilling to the heap. Two covers
  /// every workload in the repo (taxi: cell + taxi id); growing it trades
  /// queue-slot memory for spill headroom.
  static constexpr size_t kInlineAttrCapacity = 2;

  /// One attribute: an interned name id and its value, in insertion order.
  struct Attr {
    AttrId id = kInvalidAttrId;
    Value value;

    bool operator==(const Attr& other) const {
      return id == other.id && value == other.value;
    }
  };

  Event() = default;
  Event(EventTypeId type, Timestamp ts, StreamId stream = kDefaultStream)
      : type_(type), timestamp_(ts), stream_(stream) {}

  Event(const Event& other);
  Event& operator=(const Event& other);
  // Custom moves: the defaults would null spill_ but leave attr_count_,
  // making any access to a moved-from spilled event read past the inline
  // array. Moved-from events are valid and empty of attributes instead.
  Event(Event&& other) noexcept;
  Event& operator=(Event&& other) noexcept;

  EventTypeId type() const { return type_; }
  Timestamp timestamp() const { return timestamp_; }
  StreamId stream() const { return stream_; }

  void set_timestamp(Timestamp ts) { timestamp_ = ts; }
  void set_stream(StreamId s) { stream_ = s; }

  /// Sets or replaces an attribute by pre-bound id (the hot-path variant).
  void SetAttribute(AttrId id, Value value);

  /// Sets or replaces an attribute by name, interning it into AttrNames()
  /// (get-or-create, so events and queries bound by name meet in one id
  /// space).
  void SetAttribute(std::string_view name, Value value);

  /// Non-copying attribute lookup by pre-bound id: integer compares over
  /// the inline buffer, nullptr when absent. The per-event call predicates
  /// and correlation keys make after their bind step.
  const Value* FindAttribute(AttrId id) const;

  /// Non-copying lookup by name. Never interns: an unknown name is simply
  /// absent.
  const Value* FindAttribute(std::string_view name) const;

  /// Attribute lookup; nullopt when absent. Copies — prefer FindAttribute
  /// on hot paths.
  std::optional<Value> GetAttribute(std::string_view name) const;

  /// Attribute lookup that errors when absent (for predicate evaluation).
  StatusOr<Value> RequireAttribute(std::string_view name) const;

  size_t attribute_count() const { return attr_count_; }

  /// The i-th attribute in insertion order; i < attribute_count().
  const Attr& attribute(size_t i) const {
    return attrs_data()[i];
  }

  /// Registry name of the i-th attribute (empty for invalid ids).
  std::string_view attribute_name(size_t i) const {
    return AttrNames().NameOf(attribute(i).id);
  }

  /// Equality on type, timestamp, stream, and attributes (order-sensitive;
  /// attributes are kept in insertion order).
  bool operator==(const Event& other) const;
  bool operator!=(const Event& other) const { return !(*this == other); }

  /// Debug rendering: `e3@17{cell=42}`.
  std::string ToString(const EventTypeRegistry* registry = nullptr) const;

 private:
  const Attr* attrs_data() const {
    return spill_ != nullptr ? spill_->data() : inline_.data();
  }
  Attr* attrs_data() {
    return spill_ != nullptr ? spill_->data() : inline_.data();
  }

  EventTypeId type_ = kInvalidEventType;
  Timestamp timestamp_ = 0;
  StreamId stream_ = kDefaultStream;
  /// Total attributes; they live in `inline_` until the count exceeds
  /// kInlineAttrCapacity, then all of them in `*spill_`.
  uint32_t attr_count_ = 0;
  std::array<Attr, kInlineAttrCapacity> inline_;
  std::unique_ptr<std::vector<Attr>> spill_;
};

/// Non-owning view of a contiguous run of events (C++17 stand-in for
/// std::span<const Event>). Batched ingest and batch predicate evaluation
/// hand these out so bulk paths never copy. Lives here rather than the
/// stream layer because both the replay machinery and the CEP predicate
/// layer consume it.
class EventSpan {
 public:
  constexpr EventSpan() = default;
  constexpr EventSpan(const Event* data, size_t size)
      : data_(data), size_(size) {}

  const Event* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Event& operator[](size_t i) const { return data_[i]; }
  const Event* begin() const { return data_; }
  const Event* end() const { return data_ + size_; }

 private:
  const Event* data_ = nullptr;
  size_t size_ = 0;
};

/// Strict-weak temporal order used when merging streams: by timestamp, ties
/// broken by stream id then type id to keep merges deterministic (the paper
/// notes same-timestamp order is semantically arbitrary; we fix one).
struct EventTemporalOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.timestamp() != b.timestamp()) return a.timestamp() < b.timestamp();
    if (a.stream() != b.stream()) return a.stream() < b.stream();
    return a.type() < b.type();
  }
};

}  // namespace pldp

#endif  // PLDP_EVENT_EVENT_H_
