// Copyright 2026 The PLDP Authors.
//
// The event model of the paper's Section III:
//
//   data stream S^D = (d_1, d_2, ...)    raw tuples from data subjects
//   event stream S^E = (e_1, e_2, ...)   tuples of interest, in temporal order
//
// `Event` represents both: a raw tuple is an event whose type is whatever
// the extraction step assigns. Events carry a timestamp, the id of the
// stream (data subject) that produced them, a type, and optional attributes.

#ifndef PLDP_EVENT_EVENT_H_
#define PLDP_EVENT_EVENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "event/event_type.h"
#include "event/value.h"

namespace pldp {

/// Logical time. The unit is dataset-defined (seconds for the taxi
/// simulator, window index for the synthetic generator).
using Timestamp = int64_t;

/// Identifies the originating data stream / data subject.
using StreamId = uint32_t;

inline constexpr StreamId kDefaultStream = 0;

/// One event (or raw data tuple) in a stream.
///
/// Events are value types: cheap to copy when they carry few attributes,
/// safely movable, and hashable by content where needed.
class Event {
 public:
  Event() = default;
  Event(EventTypeId type, Timestamp ts, StreamId stream = kDefaultStream)
      : type_(type), timestamp_(ts), stream_(stream) {}

  EventTypeId type() const { return type_; }
  Timestamp timestamp() const { return timestamp_; }
  StreamId stream() const { return stream_; }

  void set_timestamp(Timestamp ts) { timestamp_ = ts; }
  void set_stream(StreamId s) { stream_ = s; }

  /// Sets or replaces an attribute.
  void SetAttribute(const std::string& name, Value value);

  /// Attribute lookup; nullopt when absent.
  std::optional<Value> GetAttribute(const std::string& name) const;

  /// Attribute lookup that errors when absent (for predicate evaluation).
  StatusOr<Value> RequireAttribute(const std::string& name) const;

  size_t attribute_count() const { return attributes_.size(); }

  const std::vector<std::pair<std::string, Value>>& attributes() const {
    return attributes_;
  }

  /// Equality on type, timestamp, stream, and attributes (order-sensitive;
  /// attributes are kept in insertion order).
  bool operator==(const Event& other) const;
  bool operator!=(const Event& other) const { return !(*this == other); }

  /// Debug rendering: `e3@17{cell=42}`.
  std::string ToString(const EventTypeRegistry* registry = nullptr) const;

 private:
  EventTypeId type_ = kInvalidEventType;
  Timestamp timestamp_ = 0;
  StreamId stream_ = kDefaultStream;
  // Small linear map: events carry at most a handful of attributes, so a
  // vector beats a hash map on both memory and lookup time.
  std::vector<std::pair<std::string, Value>> attributes_;
};

/// Strict-weak temporal order used when merging streams: by timestamp, ties
/// broken by stream id then type id to keep merges deterministic (the paper
/// notes same-timestamp order is semantically arbitrary; we fix one).
struct EventTemporalOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.timestamp() != b.timestamp()) return a.timestamp() < b.timestamp();
    if (a.stream() != b.stream()) return a.stream() < b.stream();
    return a.type() < b.type();
  }
};

}  // namespace pldp

#endif  // PLDP_EVENT_EVENT_H_
