// Copyright 2026 The PLDP Authors.

#include "event/symbol_table.h"

namespace pldp {

InternTable::InternTable() {
  // order: relaxed; construction precedes any sharing.
  for (auto& block : blocks_) {
    block.store(nullptr, std::memory_order_relaxed);
  }
}

InternTable::~InternTable() {
  // order: relaxed; destruction requires external quiescence anyway.
  for (auto& block : blocks_) {
    delete[] block.load(std::memory_order_relaxed);
  }
}

uint32_t InternTable::Intern(std::string_view name) {
  MutexLock lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;

  // order: relaxed; mu_ serializes all writers, so this thread's own
  // publication order is the only constraint (see the release below).
  const size_t id = size_.load(std::memory_order_relaxed);
  // order: relaxed; the budget is an isolated knob (see SetBudget).
  if (id >= budget_.load(std::memory_order_relaxed)) return kInvalidInternId;
  const size_t block_index = id >> kBlockBits;
  // order: relaxed load under mu_; the release store sequences the fresh
  // block's construction before the size_ publication below, which is
  // what lock-free NameOf readers synchronize with.
  std::string* block = blocks_[block_index].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new std::string[kBlockSize];
    // order: release; see the rationale above the load.
    blocks_[block_index].store(block, std::memory_order_release);
  }
  std::string& slot = block[id & (kBlockSize - 1)];
  slot.assign(name.data(), name.size());
  ids_.emplace(std::string_view(slot), static_cast<uint32_t>(id));
  // order: release is the publication point — a reader that observes
  // size_ > id also observes the block pointer and the fully written
  // slot (pairs with the acquire loads in NameOf and size()).
  size_.store(id + 1, std::memory_order_release);
  return static_cast<uint32_t>(id);
}

StatusOr<uint32_t> InternTable::TryIntern(std::string_view name) {
  const uint32_t id = Intern(name);
  if (id == kInvalidInternId) {
    // order: relaxed; diagnostic read of the isolated budget knob.
    return Status::ResourceExhausted(
        "intern table budget exhausted (" +
        std::to_string(budget_.load(std::memory_order_relaxed)) +
        " entries); raise it with SetBudget or stop interning unbounded "
        "payload cardinalities");
  }
  return id;
}

void InternTable::SetBudget(size_t max_entries) {
  MutexLock lock(mu_);
  if (max_entries == 0 || max_entries > kMaxEntries) {
    max_entries = kMaxEntries;
  }
  // order: relaxed; the budget gates only NEW registrations and carries
  // no payload — a racing Intern may use either bound, both are valid.
  budget_.store(max_entries, std::memory_order_relaxed);
}

uint32_t InternTable::Find(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidInternId : it->second;
}

std::string_view InternTable::NameOf(uint32_t id) const {
  // order: acquire pairs with Intern's release store of size_.
  if (id >= size_.load(std::memory_order_acquire)) return {};
  // order: relaxed; the acquire above already orders this load after the
  // block pointer's release store (sequenced before the size_
  // publication).
  const std::string* block =
      blocks_[id >> kBlockBits].load(std::memory_order_relaxed);
  return std::string_view(block[id & (kBlockSize - 1)]);
}

InternTable& AttrNames() {
  static InternTable* table = new InternTable();
  return *table;
}

InternTable& SymbolNames() {
  static InternTable* table = new InternTable();
  return *table;
}

}  // namespace pldp
