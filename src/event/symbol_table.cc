// Copyright 2026 The PLDP Authors.

#include "event/symbol_table.h"

namespace pldp {

InternTable::InternTable() {
  for (auto& block : blocks_) {
    block.store(nullptr, std::memory_order_relaxed);
  }
}

InternTable::~InternTable() {
  for (auto& block : blocks_) {
    delete[] block.load(std::memory_order_relaxed);
  }
}

uint32_t InternTable::Intern(std::string_view name) {
  MutexLock lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;

  const size_t id = size_.load(std::memory_order_relaxed);
  if (id >= budget_.load(std::memory_order_relaxed)) return kInvalidInternId;
  const size_t block_index = id >> kBlockBits;
  std::string* block = blocks_[block_index].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new std::string[kBlockSize];
    blocks_[block_index].store(block, std::memory_order_release);
  }
  std::string& slot = block[id & (kBlockSize - 1)];
  slot.assign(name.data(), name.size());
  ids_.emplace(std::string_view(slot), static_cast<uint32_t>(id));
  // The release store is the publication point: a reader that observes
  // size_ > id also observes the block pointer and the fully written slot.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<uint32_t>(id);
}

StatusOr<uint32_t> InternTable::TryIntern(std::string_view name) {
  const uint32_t id = Intern(name);
  if (id == kInvalidInternId) {
    return Status::ResourceExhausted(
        "intern table budget exhausted (" +
        std::to_string(budget_.load(std::memory_order_relaxed)) +
        " entries); raise it with SetBudget or stop interning unbounded "
        "payload cardinalities");
  }
  return id;
}

void InternTable::SetBudget(size_t max_entries) {
  MutexLock lock(mu_);
  if (max_entries == 0 || max_entries > kMaxEntries) {
    max_entries = kMaxEntries;
  }
  budget_.store(max_entries, std::memory_order_relaxed);
}

uint32_t InternTable::Find(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidInternId : it->second;
}

std::string_view InternTable::NameOf(uint32_t id) const {
  if (id >= size_.load(std::memory_order_acquire)) return {};
  // The acquire above orders this relaxed load after the block pointer's
  // release store (sequenced before the size_ publication).
  const std::string* block =
      blocks_[id >> kBlockBits].load(std::memory_order_relaxed);
  return std::string_view(block[id & (kBlockSize - 1)]);
}

InternTable& AttrNames() {
  static InternTable* table = new InternTable();
  return *table;
}

InternTable& SymbolNames() {
  static InternTable* table = new InternTable();
  return *table;
}

}  // namespace pldp
