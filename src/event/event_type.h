// Copyright 2026 The PLDP Authors.
//
// Event types and their registry.
//
// CEP patterns are sequences over *event types* ("taxi entered cell 17",
// "temperature spike"); individual events are instances of a type. Types
// are interned to dense integer ids so pattern matching and the DP
// mechanisms work on integers, with names kept for diagnostics.

#ifndef PLDP_EVENT_EVENT_TYPE_H_
#define PLDP_EVENT_EVENT_TYPE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace pldp {

/// Dense identifier of an event type. Valid ids are < registry size.
using EventTypeId = uint32_t;

/// Sentinel for "no type" / unresolved lookups.
inline constexpr EventTypeId kInvalidEventType =
    static_cast<EventTypeId>(-1);

/// Bidirectional name <-> id interning table for event types.
///
/// Registration order defines ids (0, 1, 2, ...), so a registry built from
/// the same sequence of names is identical across runs — part of the
/// determinism contract of the library.
class EventTypeRegistry {
 public:
  EventTypeRegistry() = default;

  /// Registers `name`, returning its new id, or AlreadyExists with the
  /// existing id unavailable (use `Intern` for get-or-create semantics).
  StatusOr<EventTypeId> Register(const std::string& name);

  /// Get-or-create: returns the existing id or registers a new one.
  EventTypeId Intern(const std::string& name);

  /// Id for `name`, or NotFound.
  StatusOr<EventTypeId> Lookup(const std::string& name) const;

  /// Name for `id`, or NotFound.
  StatusOr<std::string> Name(EventTypeId id) const;

  /// Number of registered types. Ids are exactly [0, size()).
  size_t size() const { return names_.size(); }

  bool Contains(EventTypeId id) const { return id < names_.size(); }

  /// Convenience: registers `count` types named `<prefix>0 .. <prefix>N-1`.
  /// Used by the synthetic dataset generator (paper: e1..e20).
  static EventTypeRegistry MakeDense(size_t count,
                                     const std::string& prefix = "e");

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventTypeId> ids_;
};

}  // namespace pldp

#endif  // PLDP_EVENT_EVENT_TYPE_H_
