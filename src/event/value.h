// Copyright 2026 The PLDP Authors.
//
// Attribute values carried by data tuples and events. A small closed
// variant (bool / int64 / double / string) is enough for the CEP
// predicates PLDP supports, and keeps events cheap to copy.

#ifndef PLDP_EVENT_VALUE_H_
#define PLDP_EVENT_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace pldp {

/// Discriminates the alternatives of `Value`.
enum class ValueKind : int {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

std::string_view ValueKindToString(ValueKind kind);

/// A dynamically typed attribute value.
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(bool b) : rep_(b) {}
  explicit Value(int64_t i) : rep_(i) {}
  explicit Value(double d) : rep_(d) {}
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(const char* s) : rep_(std::string(s)) {}

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }

  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }

  /// Typed accessors; status error if the kind does not match.
  StatusOr<bool> AsBool() const;
  StatusOr<int64_t> AsInt() const;
  StatusOr<double> AsDouble() const;
  StatusOr<std::string> AsString() const;

  /// Numeric view: int and double both convert; others error. Used by
  /// comparison predicates so `speed > 30` works for either numeric kind.
  StatusOr<double> AsNumeric() const;

  /// Exact equality: kinds must match and payloads compare equal.
  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Debug rendering, e.g. `42`, `3.14`, `"cell_7"`, `true`.
  std::string ToString() const;

 private:
  std::variant<bool, int64_t, double, std::string> rep_;
};

}  // namespace pldp

#endif  // PLDP_EVENT_VALUE_H_
