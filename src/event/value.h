// Copyright 2026 The PLDP Authors.
//
// Attribute values carried by data tuples and events. A small closed
// variant (bool / int64 / double / string / symbol) is enough for the CEP
// predicates PLDP supports, and keeps events cheap to copy.
//
// The two text kinds exist for different regimes: `kString` owns its
// payload (decoding, ad-hoc construction), `kSymbol` is a flyweight id
// into the process-wide SymbolNames() table (event/symbol_table.h) so
// copying the value — and therefore the event carrying it — never
// allocates. The two compare equal when their content is equal, and
// `CorrelationValueKey` hashes them identically, so a pipeline may mix
// interned and legacy-constructed events freely; `Value::Sym` is the
// zero-allocation-path constructor.

#ifndef PLDP_EVENT_VALUE_H_
#define PLDP_EVENT_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.h"
#include "event/symbol_table.h"

namespace pldp {

/// Discriminates the alternatives of `Value`.
enum class ValueKind : int {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kSymbol = 4,
};

std::string_view ValueKindToString(ValueKind kind);

/// An interned string payload: a flyweight handle into SymbolNames().
struct Symbol {
  SymbolId id = kInvalidSymbolId;

  constexpr Symbol() = default;
  constexpr explicit Symbol(SymbolId i) : id(i) {}

  bool operator==(const Symbol& other) const { return id == other.id; }
  bool operator!=(const Symbol& other) const { return id != other.id; }
};

/// A dynamically typed attribute value.
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(bool b) : rep_(b) {}
  explicit Value(int64_t i) : rep_(i) {}
  explicit Value(double d) : rep_(d) {}
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(const char* s) : rep_(std::string(s)) {}
  explicit Value(Symbol s) : rep_(s) {}

  /// Interns `s` into SymbolNames() and wraps the id: the constructor of
  /// the allocation-free data plane. Interning cost is paid once per
  /// distinct payload, at construction — copies are free afterwards.
  /// If the table is full (kMaxEntries distinct payloads — interning an
  /// unbounded cardinality is a misuse, see symbol_table.h) the value
  /// falls back to an owned string: copies stop being free, but distinct
  /// payloads are never aliased to one id.
  static Value Sym(std::string_view s) {
    const SymbolId id = SymbolNames().Intern(s);
    if (id == kInvalidSymbolId) return Value(std::string(s));
    return Value(Symbol(id));
  }

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }

  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_symbol() const { return kind() == ValueKind::kSymbol; }

  /// Either text kind (owned string or interned symbol).
  bool is_text() const { return is_string() || is_symbol(); }

  /// Typed accessors; status error if the kind does not match.
  StatusOr<bool> AsBool() const;
  StatusOr<int64_t> AsInt() const;
  StatusOr<double> AsDouble() const;

  /// Materializes a copy; accepts both text kinds. Prefer AsStringView on
  /// hot paths.
  StatusOr<std::string> AsString() const;

  /// Non-copying text accessor; accepts both text kinds. The view is valid
  /// as long as this Value lives (kString) or forever (kSymbol).
  StatusOr<std::string_view> AsStringView() const;

  /// The interned id; kSymbol only.
  StatusOr<SymbolId> AsSymbol() const;

  /// Numeric view: int and double both convert; others error. Used by
  /// comparison predicates so `speed > 30` works for either numeric kind.
  StatusOr<double> AsNumeric() const;

  /// Equality: same-kind payloads compare directly; the two text kinds
  /// compare by content (Value("a") == Value::Sym("a")), so interned and
  /// legacy-constructed events are interchangeable. Other kind mixes are
  /// unequal.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Debug rendering, e.g. `42`, `3.14`, `"cell_7"`, `true`.
  std::string ToString() const;

 private:
  std::variant<bool, int64_t, double, std::string, Symbol> rep_;
};

}  // namespace pldp

#endif  // PLDP_EVENT_VALUE_H_
