// Copyright 2026 The PLDP Authors.

#include "dp/exponential.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace pldp {

StatusOr<ExponentialMechanism> ExponentialMechanism::Create(
    double epsilon, double utility_sensitivity) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        StrFormat("epsilon must be > 0, got %g", epsilon));
  }
  if (!(utility_sensitivity > 0.0) || !std::isfinite(utility_sensitivity)) {
    return Status::InvalidArgument(
        StrFormat("utility sensitivity must be > 0, got %g",
                  utility_sensitivity));
  }
  return ExponentialMechanism(epsilon, utility_sensitivity);
}

StatusOr<std::vector<double>> ExponentialMechanism::SelectionProbabilities(
    const std::vector<double>& utilities) const {
  if (utilities.empty()) {
    return Status::InvalidArgument("candidate set must not be empty");
  }
  for (double u : utilities) {
    if (!std::isfinite(u)) {
      return Status::InvalidArgument("utilities must be finite");
    }
  }
  // Subtract the max before exponentiation for numerical stability.
  double max_u = *std::max_element(utilities.begin(), utilities.end());
  std::vector<double> weights(utilities.size());
  double total = 0.0;
  for (size_t i = 0; i < utilities.size(); ++i) {
    weights[i] =
        std::exp(epsilon_ * (utilities[i] - max_u) / (2.0 * sensitivity_));
    total += weights[i];
  }
  for (double& w : weights) w /= total;
  return weights;
}

StatusOr<size_t> ExponentialMechanism::Select(
    const std::vector<double>& utilities, Rng* rng) const {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  PLDP_ASSIGN_OR_RETURN(auto probs, SelectionProbabilities(utilities));
  double u = rng->UniformDouble();
  double cum = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    cum += probs[i];
    if (u < cum) return i;
  }
  return probs.size() - 1;  // floating-point tail
}

}  // namespace pldp
