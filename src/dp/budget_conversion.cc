// Copyright 2026 The PLDP Authors.

#include "dp/budget_conversion.h"

#include <cmath>

#include "common/strings.h"

namespace pldp {

namespace {
Status ValidatePositive(double v, const char* what) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    return Status::InvalidArgument(
        StrFormat("%s must be > 0 and finite, got %g", what, v));
  }
  return Status::OK();
}
}  // namespace

StatusOr<double> AggregatePatternBudget(
    const std::vector<double>& per_timestamp_epsilon,
    const std::vector<size_t>& pattern_timestamps) {
  double sum = 0.0;
  for (size_t t : pattern_timestamps) {
    if (t >= per_timestamp_epsilon.size()) {
      return Status::OutOfRange(
          StrFormat("pattern timestamp %zu beyond schedule length %zu", t,
                    per_timestamp_epsilon.size()));
    }
    if (per_timestamp_epsilon[t] < 0.0 ||
        !std::isfinite(per_timestamp_epsilon[t])) {
      return Status::InvalidArgument("per-timestamp epsilon must be >= 0");
    }
    sum += per_timestamp_epsilon[t];
  }
  return sum;
}

StatusOr<double> WEventPatternLevelEpsilon(double eps_w, size_t w,
                                           size_t pattern_span) {
  PLDP_RETURN_IF_ERROR(ValidatePositive(eps_w, "w-event epsilon"));
  if (w == 0) return Status::InvalidArgument("w must be > 0");
  if (pattern_span == 0) {
    return Status::InvalidArgument("pattern span must be > 0");
  }
  // A pattern cannot correlate with more than w timestamps of one window
  // at the aggregation rate; beyond that the w-event guarantee renews.
  double effective_span = static_cast<double>(pattern_span);
  return effective_span * eps_w / static_cast<double>(w);
}

StatusOr<double> WEventBudgetForPatternLevel(double eps_pattern, size_t w,
                                             size_t pattern_span) {
  PLDP_RETURN_IF_ERROR(ValidatePositive(eps_pattern, "pattern-level epsilon"));
  if (w == 0) return Status::InvalidArgument("w must be > 0");
  if (pattern_span == 0) {
    return Status::InvalidArgument("pattern span must be > 0");
  }
  return eps_pattern * static_cast<double>(w) /
         static_cast<double>(pattern_span);
}

StatusOr<double> LandmarkPatternLevelEpsilon(double eps,
                                             double landmark_fraction,
                                             size_t landmark_count,
                                             size_t pattern_span) {
  PLDP_RETURN_IF_ERROR(ValidatePositive(eps, "epsilon"));
  if (!(landmark_fraction > 0.0) || landmark_fraction > 1.0) {
    return Status::InvalidArgument("landmark fraction must be in (0, 1]");
  }
  if (landmark_count == 0) {
    return Status::InvalidArgument("landmark count must be > 0");
  }
  if (pattern_span == 0) {
    return Status::InvalidArgument("pattern span must be > 0");
  }
  return static_cast<double>(pattern_span) * landmark_fraction * eps /
         static_cast<double>(landmark_count);
}

StatusOr<double> LandmarkBudgetForPatternLevel(double eps_pattern,
                                               double landmark_fraction,
                                               size_t landmark_count,
                                               size_t pattern_span) {
  PLDP_RETURN_IF_ERROR(ValidatePositive(eps_pattern, "pattern-level epsilon"));
  if (!(landmark_fraction > 0.0) || landmark_fraction > 1.0) {
    return Status::InvalidArgument("landmark fraction must be in (0, 1]");
  }
  if (landmark_count == 0) {
    return Status::InvalidArgument("landmark count must be > 0");
  }
  if (pattern_span == 0) {
    return Status::InvalidArgument("pattern span must be > 0");
  }
  return eps_pattern * static_cast<double>(landmark_count) /
         (static_cast<double>(pattern_span) * landmark_fraction);
}

}  // namespace pldp
