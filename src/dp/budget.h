// Copyright 2026 The PLDP Authors.
//
// Privacy budgets and their allocation across pattern elements.
//
// Pattern-level DP assigns one total budget ε to a private pattern
// P = seq(e_1..e_m) and splits it over the m elements:
// Σ ε_i = ε (Theorem 1). `BudgetAllocation` is that split — the object the
// uniform PPM constructs directly and the adaptive PPM optimizes.
// `BudgetAccountant` tracks spending so a mechanism cannot silently exceed
// its budget.

#ifndef PLDP_DP_BUDGET_H_
#define PLDP_DP_BUDGET_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace pldp {

/// A split of a total privacy budget over pattern elements.
class BudgetAllocation {
 public:
  BudgetAllocation() = default;

  /// Even split: ε_i = ε / m (the uniform PPM's distribution, Fig. 3).
  static StatusOr<BudgetAllocation> Uniform(double total_epsilon,
                                            size_t elements);

  /// Explicit split; entries must be >= 0 and sum to a positive value.
  static StatusOr<BudgetAllocation> FromWeights(std::vector<double> epsilons);

  size_t size() const { return epsilons_.size(); }
  double operator[](size_t i) const { return epsilons_[i]; }
  const std::vector<double>& epsilons() const { return epsilons_; }

  /// Total ε = Σ ε_i.
  double Total() const;

  /// Moves `delta` budget onto element `winner`, taking delta/m from every
  /// element (the paper's Algorithm 1 step 7/11 move), then clamps to
  /// [0, total] and rescales so the total is exactly preserved.
  Status Shift(size_t winner, double delta);

  /// Rescales so that Total() == new_total (requires current total > 0).
  Status ScaleTo(double new_total);

  std::string ToString() const;

 private:
  explicit BudgetAllocation(std::vector<double> epsilons)
      : epsilons_(std::move(epsilons)) {}

  std::vector<double> epsilons_;
};

/// Tracks cumulative spending against a fixed total budget.
class BudgetAccountant {
 public:
  /// `total_epsilon` must be > 0.
  static StatusOr<BudgetAccountant> Create(double total_epsilon);

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }

  /// Records a spend of `epsilon` (> 0). Returns PrivacyBudgetExceeded and
  /// leaves the accountant unchanged if it would overdraw (with a small
  /// relative tolerance for floating-point accumulation).
  Status Spend(double epsilon);

  /// True when no further positive spend is possible.
  bool Exhausted() const;

 private:
  explicit BudgetAccountant(double total) : total_(total) {}

  double total_ = 0.0;
  double spent_ = 0.0;
};

}  // namespace pldp

#endif  // PLDP_DP_BUDGET_H_
