// Copyright 2026 The PLDP Authors.
//
// Per-pattern privacy-budget ledger.
//
// A deployed trusted CEP engine serves many consumers over time; each
// mechanism activation spends part of a private pattern's lifetime budget.
// The ledger tracks grants (by data subjects) and charges (by mechanism
// activations) per pattern, and refuses charges that would overdraw —
// sequential composition enforced at the system boundary, not by
// convention.

#ifndef PLDP_DP_LEDGER_H_
#define PLDP_DP_LEDGER_H_

#include <unordered_map>
#include <vector>

#include "cep/pattern.h"
#include "common/status.h"
#include "dp/budget.h"

namespace pldp {

/// One recorded charge.
struct LedgerEntry {
  PatternId pattern = kInvalidPattern;
  double epsilon = 0.0;
  /// Free-form label ("fig4 run", "consumer 3 activation", ...).
  std::string note;
};

/// Tracks lifetime privacy budgets per private pattern.
class PatternBudgetLedger {
 public:
  PatternBudgetLedger() = default;

  /// Grants a lifetime budget to a pattern. A pattern can be granted only
  /// once (AlreadyExists otherwise); top-ups are deliberately unsupported —
  /// a data subject weakening their own protection should be a new ledger.
  Status Grant(PatternId pattern, double epsilon);

  /// True if the pattern has a grant.
  bool HasGrant(PatternId pattern) const;

  /// Records a spend against the pattern's grant. Fails with
  /// PrivacyBudgetExceeded (leaving the ledger unchanged) on overdraw and
  /// NotFound when the pattern was never granted.
  Status Charge(PatternId pattern, double epsilon, std::string note = "");

  /// Remaining budget; NotFound when never granted.
  StatusOr<double> Remaining(PatternId pattern) const;

  /// Total granted / spent across all patterns.
  double TotalGranted() const;
  double TotalSpent() const;

  /// Audit trail in charge order.
  const std::vector<LedgerEntry>& entries() const { return entries_; }

 private:
  std::unordered_map<PatternId, BudgetAccountant> accounts_;
  std::vector<LedgerEntry> entries_;
};

}  // namespace pldp

#endif  // PLDP_DP_LEDGER_H_
