// Copyright 2026 The PLDP Authors.

#include "dp/budget.h"

#include <cmath>

#include "common/math_utils.h"
#include "common/strings.h"

namespace pldp {

StatusOr<BudgetAllocation> BudgetAllocation::Uniform(double total_epsilon,
                                                     size_t elements) {
  if (!(total_epsilon > 0.0) || !std::isfinite(total_epsilon)) {
    return Status::InvalidArgument("total epsilon must be positive/finite");
  }
  if (elements == 0) {
    return Status::InvalidArgument("allocation needs at least one element");
  }
  return BudgetAllocation(std::vector<double>(
      elements, total_epsilon / static_cast<double>(elements)));
}

StatusOr<BudgetAllocation> BudgetAllocation::FromWeights(
    std::vector<double> epsilons) {
  if (epsilons.empty()) {
    return Status::InvalidArgument("allocation needs at least one element");
  }
  double total = 0.0;
  for (double e : epsilons) {
    if (e < 0.0 || !std::isfinite(e)) {
      return Status::InvalidArgument("per-element epsilon must be >= 0");
    }
    total += e;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument("total epsilon must be positive");
  }
  return BudgetAllocation(std::move(epsilons));
}

double BudgetAllocation::Total() const { return StableSum(epsilons_); }

Status BudgetAllocation::Shift(size_t winner, double delta) {
  if (winner >= epsilons_.size()) {
    return Status::OutOfRange("winner index out of range");
  }
  if (delta < 0.0 || !std::isfinite(delta)) {
    return Status::InvalidArgument("shift delta must be >= 0");
  }
  const double total_before = Total();
  const double m = static_cast<double>(epsilons_.size());
  // Algorithm 1, line 7/11: winner += δε, every element -= δε/m. The winner
  // participates in the subtraction too, so its net gain is δε(1 − 1/m).
  epsilons_[winner] += delta;
  for (double& e : epsilons_) e -= delta / m;
  // Clamp to the feasible region [0, ε] and restore the exact total.
  for (double& e : epsilons_) e = Clamp(e, 0.0, total_before);
  return ScaleTo(total_before);
}

Status BudgetAllocation::ScaleTo(double new_total) {
  if (!(new_total > 0.0) || !std::isfinite(new_total)) {
    return Status::InvalidArgument("new total must be positive/finite");
  }
  double cur = Total();
  if (!(cur > 0.0)) {
    return Status::FailedPrecondition("cannot rescale an all-zero allocation");
  }
  double f = new_total / cur;
  for (double& e : epsilons_) e *= f;
  return Status::OK();
}

std::string BudgetAllocation::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < epsilons_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.4f", epsilons_[i]);
  }
  out += StrFormat("] (total %.4f)", Total());
  return out;
}

StatusOr<BudgetAccountant> BudgetAccountant::Create(double total_epsilon) {
  if (!(total_epsilon > 0.0) || !std::isfinite(total_epsilon)) {
    return Status::InvalidArgument("total epsilon must be positive/finite");
  }
  return BudgetAccountant(total_epsilon);
}

Status BudgetAccountant::Spend(double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("spend must be positive/finite");
  }
  // Tolerate 1e-9 relative slack: uniform splits ε/m accumulate rounding.
  const double tolerance = total_ * 1e-9;
  if (spent_ + epsilon > total_ + tolerance) {
    return Status::PrivacyBudgetExceeded(
        StrFormat("spend %.6g exceeds remaining %.6g of total %.6g", epsilon,
                  remaining(), total_));
  }
  spent_ += epsilon;
  return Status::OK();
}

bool BudgetAccountant::Exhausted() const {
  return spent_ >= total_ * (1.0 - 1e-12);
}

}  // namespace pldp
