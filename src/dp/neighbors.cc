// Copyright 2026 The PLDP Authors.

#include "dp/neighbors.h"

#include <algorithm>
#include <cmath>

namespace pldp {

std::vector<std::vector<bool>> InPatternNeighbors(
    const std::vector<bool>& indicators) {
  std::vector<std::vector<bool>> out;
  out.reserve(indicators.size());
  for (size_t i = 0; i < indicators.size(); ++i) {
    std::vector<bool> n = indicators;
    n[i] = !n[i];
    out.push_back(std::move(n));
  }
  return out;
}

namespace {
Status CheckEnumerable(size_t m) {
  if (m > 20) {
    return Status::InvalidArgument(
        "exact enumeration supports at most 20 elements, got " +
        std::to_string(m));
  }
  return Status::OK();
}

std::vector<bool> BitsOf(uint32_t mask, size_t m) {
  std::vector<bool> bits(m);
  for (size_t i = 0; i < m; ++i) bits[i] = (mask >> i) & 1u;
  return bits;
}
}  // namespace

StatusOr<double> ExactPrivacyLoss(const PatternRandomizedResponse& mechanism,
                                  const std::vector<bool>& x,
                                  const std::vector<bool>& x_prime) {
  const size_t m = mechanism.size();
  PLDP_RETURN_IF_ERROR(CheckEnumerable(m));
  if (x.size() != m || x_prime.size() != m) {
    return Status::InvalidArgument("input length mismatch");
  }
  double worst = 0.0;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    std::vector<bool> response = BitsOf(mask, m);
    PLDP_ASSIGN_OR_RETURN(double p, mechanism.ResponseProbability(x, response));
    PLDP_ASSIGN_OR_RETURN(double q,
                          mechanism.ResponseProbability(x_prime, response));
    // Flip probabilities are in (0, 1/2], so all response probabilities are
    // strictly positive — the ratio is always defined.
    worst = std::max(worst, std::abs(std::log(p / q)));
  }
  return worst;
}

StatusOr<double> MaxInPatternNeighborLoss(
    const PatternRandomizedResponse& mechanism) {
  const size_t m = mechanism.size();
  PLDP_RETURN_IF_ERROR(CheckEnumerable(m));
  // By symmetry of randomized response the loss does not depend on the base
  // input, so fixing x = all-false loses no generality; tests sweep anyway.
  std::vector<bool> x(m, false);
  double worst = 0.0;
  for (const auto& neighbor : InPatternNeighbors(x)) {
    PLDP_ASSIGN_OR_RETURN(double loss, ExactPrivacyLoss(mechanism, x, neighbor));
    worst = std::max(worst, loss);
  }
  return worst;
}

StatusOr<double> MaxArbitraryNeighborLoss(
    const PatternRandomizedResponse& mechanism) {
  const size_t m = mechanism.size();
  PLDP_RETURN_IF_ERROR(CheckEnumerable(m));
  std::vector<bool> x(m, false);
  std::vector<bool> x_prime(m, true);
  // The loss between product-mechanism inputs is maximized when every bit
  // differs; all-false vs all-true achieves it.
  return ExactPrivacyLoss(mechanism, x, x_prime);
}

}  // namespace pldp
