// Copyright 2026 The PLDP Authors.
//
// The Laplace mechanism — the workhorse of the stream-DP baselines (BD, BA,
// landmark privacy), which publish noisy per-timestamp counts. Adding
// Laplace(Δ/ε) noise to a query with L1 sensitivity Δ is ε-DP (Dwork &
// Roth, 2014).

#ifndef PLDP_DP_LAPLACE_H_
#define PLDP_DP_LAPLACE_H_

#include "common/random.h"
#include "common/status.h"

namespace pldp {

/// ε-DP Laplace mechanism with fixed L1 sensitivity.
class LaplaceMechanism {
 public:
  /// `sensitivity` > 0, `epsilon` > 0.
  static StatusOr<LaplaceMechanism> Create(double sensitivity, double epsilon);

  double sensitivity() const { return sensitivity_; }
  double epsilon() const { return epsilon_; }
  /// Noise scale b = Δ/ε.
  double scale() const { return sensitivity_ / epsilon_; }

  /// value + Laplace(0, Δ/ε).
  double AddNoise(double value, Rng* rng) const;

  /// Pr[output in (a,b)] for a true value v — the Laplace CDF difference.
  /// Used by tests to check calibration.
  double IntervalProbability(double value, double a, double b) const;

 private:
  LaplaceMechanism(double sensitivity, double epsilon)
      : sensitivity_(sensitivity), epsilon_(epsilon) {}

  double sensitivity_;
  double epsilon_;
};

}  // namespace pldp

#endif  // PLDP_DP_LAPLACE_H_
