// Copyright 2026 The PLDP Authors.
//
// Neighbor models (paper Definitions 1 and 3) and privacy-loss
// verification.
//
// An in-pattern neighbor of an indicator vector differs in exactly one
// position; pattern-level neighbors of pattern streams differ only inside
// instances of the protected pattern type, one element per instance. This
// header provides generators of these neighbors plus an *exact* privacy-loss
// computation for PatternRandomizedResponse by enumeration over its
// response space — the foundation of the library's DP property tests:
// Theorem 1 is checked, not assumed.

#ifndef PLDP_DP_NEIGHBORS_H_
#define PLDP_DP_NEIGHBORS_H_

#include <vector>

#include "common/status.h"
#include "dp/randomized_response.h"

namespace pldp {

/// All in-pattern neighbors of `indicators`: for each position, the vector
/// with that bit flipped (flipping the existence bit is the indicator-space
/// image of replacing the event, Definition 1).
std::vector<std::vector<bool>> InPatternNeighbors(
    const std::vector<bool>& indicators);

/// Exact worst-case privacy loss  max_R |ln Pr[M(x)=R] − ln Pr[M(x')=R]|
/// of the pattern mechanism between two specific inputs, by enumerating all
/// 2^m responses. m must be <= 20.
StatusOr<double> ExactPrivacyLoss(const PatternRandomizedResponse& mechanism,
                                  const std::vector<bool>& x,
                                  const std::vector<bool>& x_prime);

/// Exact worst-case loss over *all* input pairs that are in-pattern
/// neighbors: max_i max over the bit at i. By Theorem 1's per-bit argument
/// this equals max_i ε_i; the function computes it by enumeration so tests
/// can compare against the closed form.
StatusOr<double> MaxInPatternNeighborLoss(
    const PatternRandomizedResponse& mechanism);

/// Exact worst-case loss between x and an arbitrary x' (all positions may
/// differ) — the pattern-level neighbor bound for one pattern instance,
/// which Theorem 1 bounds by Σ ε_i.
StatusOr<double> MaxArbitraryNeighborLoss(
    const PatternRandomizedResponse& mechanism);

}  // namespace pldp

#endif  // PLDP_DP_NEIGHBORS_H_
