// Copyright 2026 The PLDP Authors.
//
// Budget conversion between privacy definitions (paper §VI-A2).
//
// The baselines guarantee w-event DP (BD, BA) or landmark privacy, whose
// budgets are defined per sliding window / per timestamp, not per pattern.
// To compare at equal strength, the paper aggregates each baseline's
// original budgets over the timestamps that relate to the private pattern:
// that sum is the baseline's pattern-level ε. These helpers implement the
// aggregation and its inverse (choosing the baseline's native budget so the
// aggregate matches a requested pattern-level ε).

#ifndef PLDP_DP_BUDGET_CONVERSION_H_
#define PLDP_DP_BUDGET_CONVERSION_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace pldp {

/// Sums the per-timestamp budgets at the pattern-correlated timestamps.
/// `pattern_timestamps` holds indices into `per_timestamp_epsilon`.
StatusOr<double> AggregatePatternBudget(
    const std::vector<double>& per_timestamp_epsilon,
    const std::vector<size_t>& pattern_timestamps);

/// Pattern-level ε that a w-event mechanism with total budget `eps_w`
/// provides to a pattern spanning `pattern_span` timestamps.
///
/// BD and BA both spend half the budget on dissimilarity checks and half on
/// publication, a nominal per-timestamp rate of eps_w / w; a pattern
/// spanning k <= w timestamps aggregates k * eps_w / w.
StatusOr<double> WEventPatternLevelEpsilon(double eps_w, size_t w,
                                           size_t pattern_span);

/// Inverse of WEventPatternLevelEpsilon: the native w-event budget that
/// yields the requested pattern-level ε (eps_w = eps_pattern * w / span).
StatusOr<double> WEventBudgetForPatternLevel(double eps_pattern, size_t w,
                                             size_t pattern_span);

/// Landmark privacy: budget is split between landmark timestamps (the
/// private-pattern events, in the paper's setup) and regular ones. With
/// `landmark_fraction` f of the budget reserved for the L landmark
/// timestamps, a pattern whose elements are all landmarks aggregates
/// span * f * eps / L.
StatusOr<double> LandmarkPatternLevelEpsilon(double eps, double landmark_fraction,
                                             size_t landmark_count,
                                             size_t pattern_span);

/// Inverse of LandmarkPatternLevelEpsilon.
StatusOr<double> LandmarkBudgetForPatternLevel(double eps_pattern,
                                               double landmark_fraction,
                                               size_t landmark_count,
                                               size_t pattern_span);

}  // namespace pldp

#endif  // PLDP_DP_BUDGET_CONVERSION_H_
