// Copyright 2026 The PLDP Authors.
//
// DP composition rules used by the accountants and the budget converters:
//
//  - Sequential composition: mechanisms applied to the same data compose
//    additively (Σ ε_i).
//  - Parallel composition: mechanisms applied to disjoint data cost
//    max ε_i.
//
// Theorem 1 of the paper is sequential composition over a pattern's
// elements; the independence of overlapping/repeating pattern applications
// (paper §V-A closing remark) is the parallel-style argument.

#ifndef PLDP_DP_COMPOSITION_H_
#define PLDP_DP_COMPOSITION_H_

#include <vector>

#include "common/status.h"

namespace pldp {

/// Σ ε_i; entries must be >= 0 and finite.
StatusOr<double> ComposeSequential(const std::vector<double>& epsilons);

/// max ε_i; entries must be >= 0 and finite; empty input errors.
StatusOr<double> ComposeParallel(const std::vector<double>& epsilons);

}  // namespace pldp

#endif  // PLDP_DP_COMPOSITION_H_
