// Copyright 2026 The PLDP Authors.
//
// The exponential mechanism (McSherry & Talwar 2007) — the categorical
// counterpart of the paper's §V extension note ("binary answers can be
// equivalent to categorical or numerical answers in some cases"; full
// categorical support is listed as future work).
//
// Given candidate answers with utility scores u_i and utility sensitivity
// Δu, sampling candidate i with probability ∝ exp(ε·u_i / (2Δu)) is ε-DP.
// PLDP uses it to answer categorical pattern queries ("which of these
// areas is busiest?") under a pattern-level budget.

#ifndef PLDP_DP_EXPONENTIAL_H_
#define PLDP_DP_EXPONENTIAL_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace pldp {

/// ε-DP exponential mechanism over a finite candidate set.
class ExponentialMechanism {
 public:
  /// `utility_sensitivity` Δu > 0: the max change of any candidate's
  /// utility between neighboring inputs. `epsilon` > 0.
  static StatusOr<ExponentialMechanism> Create(double epsilon,
                                               double utility_sensitivity);

  double epsilon() const { return epsilon_; }
  double utility_sensitivity() const { return sensitivity_; }

  /// Samples a candidate index with probability ∝ exp(ε·u_i/(2Δu)).
  /// `utilities` must be non-empty and finite.
  StatusOr<size_t> Select(const std::vector<double>& utilities,
                          Rng* rng) const;

  /// The exact selection distribution (for tests): normalized weights.
  StatusOr<std::vector<double>> SelectionProbabilities(
      const std::vector<double>& utilities) const;

 private:
  ExponentialMechanism(double epsilon, double sensitivity)
      : epsilon_(epsilon), sensitivity_(sensitivity) {}

  double epsilon_;
  double sensitivity_;
};

}  // namespace pldp

#endif  // PLDP_DP_EXPONENTIAL_H_
