// Copyright 2026 The PLDP Authors.
//
// Randomized response over event-existence indicators (paper Definition 5).
//
// For an event e_i with existence indicator I(e_i) ∈ {0,1}, the mechanism
// reports the true bit with probability 1 − p_i and flips it with
// probability p_i. With p_i ≤ 1/2 this is ε_i-DP for the single bit with
//
//     ε_i = ln((1 − p_i)/p_i)    ⇔    p_i = 1 / (1 + e^{ε_i}),
//
// and a pattern's total guarantee is the sum over its elements (Theorem 1).

#ifndef PLDP_DP_RANDOMIZED_RESPONSE_H_
#define PLDP_DP_RANDOMIZED_RESPONSE_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dp/budget.h"

namespace pldp {

/// Single-bit randomized response with flip probability p ∈ (0, 1/2].
class RandomizedResponse {
 public:
  /// Builds from a flip probability p ∈ (0, 0.5].
  static StatusOr<RandomizedResponse> FromFlipProbability(double p);

  /// Builds from a per-event budget ε > 0 (p = 1/(1+e^ε)).
  static StatusOr<RandomizedResponse> FromEpsilon(double epsilon);

  /// ε(p) = ln((1−p)/p); requires p ∈ (0, 0.5].
  static StatusOr<double> EpsilonForFlipProbability(double p);

  /// p(ε) = 1/(1+e^ε); requires ε >= 0, finite.
  static StatusOr<double> FlipProbabilityForEpsilon(double epsilon);

  double flip_probability() const { return p_; }
  double epsilon() const { return epsilon_; }

  /// Perturbs one indicator bit.
  bool Perturb(bool truth, Rng* rng) const;

  /// Pr[output = true | truth].
  double TrueOutputProbability(bool truth) const {
    return truth ? 1.0 - p_ : p_;
  }

 private:
  RandomizedResponse(double p, double epsilon) : p_(p), epsilon_(epsilon) {}

  double p_ = 0.5;
  double epsilon_ = 0.0;
};

/// Randomized response applied element-wise to a pattern's existence
/// indicators, one single-bit mechanism per element, parameterized by a
/// BudgetAllocation. Total guarantee = allocation.Total() (Theorem 1).
class PatternRandomizedResponse {
 public:
  /// One mechanism per element of `allocation`. Elements with ε_i = 0 are
  /// maximally noisy (p = 1/2, pure coin flip).
  static StatusOr<PatternRandomizedResponse> FromAllocation(
      const BudgetAllocation& allocation);

  size_t size() const { return mechanisms_.size(); }
  const RandomizedResponse& mechanism(size_t i) const {
    return mechanisms_[i];
  }

  /// Total ε = Σ ε_i.
  double TotalEpsilon() const;

  /// Perturbs an indicator vector (one bit per pattern element).
  StatusOr<std::vector<bool>> Perturb(const std::vector<bool>& indicators,
                                      Rng* rng) const;

  /// Pr[output = response | truth = indicators]: the product of per-bit
  /// probabilities. Exposed so property tests can verify the DP bound
  /// exactly rather than by sampling alone.
  StatusOr<double> ResponseProbability(const std::vector<bool>& indicators,
                                       const std::vector<bool>& response) const;

 private:
  explicit PatternRandomizedResponse(std::vector<RandomizedResponse> ms)
      : mechanisms_(std::move(ms)) {}

  std::vector<RandomizedResponse> mechanisms_;
};

}  // namespace pldp

#endif  // PLDP_DP_RANDOMIZED_RESPONSE_H_
