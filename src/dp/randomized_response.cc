// Copyright 2026 The PLDP Authors.

#include "dp/randomized_response.h"

#include <cmath>

#include "common/strings.h"

namespace pldp {

StatusOr<RandomizedResponse> RandomizedResponse::FromFlipProbability(
    double p) {
  if (!(p > 0.0) || p > 0.5 || !std::isfinite(p)) {
    return Status::InvalidArgument(
        StrFormat("flip probability must be in (0, 0.5], got %g", p));
  }
  PLDP_ASSIGN_OR_RETURN(double eps, EpsilonForFlipProbability(p));
  return RandomizedResponse(p, eps);
}

StatusOr<RandomizedResponse> RandomizedResponse::FromEpsilon(double epsilon) {
  PLDP_ASSIGN_OR_RETURN(double p, FlipProbabilityForEpsilon(epsilon));
  return RandomizedResponse(p, epsilon);
}

StatusOr<double> RandomizedResponse::EpsilonForFlipProbability(double p) {
  if (!(p > 0.0) || p > 0.5 || !std::isfinite(p)) {
    return Status::InvalidArgument(
        StrFormat("flip probability must be in (0, 0.5], got %g", p));
  }
  return std::log((1.0 - p) / p);
}

StatusOr<double> RandomizedResponse::FlipProbabilityForEpsilon(
    double epsilon) {
  if (epsilon < 0.0 || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        StrFormat("epsilon must be >= 0 and finite, got %g", epsilon));
  }
  return 1.0 / (1.0 + std::exp(epsilon));
}

bool RandomizedResponse::Perturb(bool truth, Rng* rng) const {
  return rng->Bernoulli(p_) ? !truth : truth;
}

StatusOr<PatternRandomizedResponse> PatternRandomizedResponse::FromAllocation(
    const BudgetAllocation& allocation) {
  std::vector<RandomizedResponse> ms;
  ms.reserve(allocation.size());
  for (size_t i = 0; i < allocation.size(); ++i) {
    PLDP_ASSIGN_OR_RETURN(auto m,
                          RandomizedResponse::FromEpsilon(allocation[i]));
    ms.push_back(m);
  }
  return PatternRandomizedResponse(std::move(ms));
}

double PatternRandomizedResponse::TotalEpsilon() const {
  double total = 0.0;
  for (const auto& m : mechanisms_) total += m.epsilon();
  return total;
}

StatusOr<std::vector<bool>> PatternRandomizedResponse::Perturb(
    const std::vector<bool>& indicators, Rng* rng) const {
  if (indicators.size() != mechanisms_.size()) {
    return Status::InvalidArgument(
        StrFormat("indicator count %zu != mechanism count %zu",
                  indicators.size(), mechanisms_.size()));
  }
  std::vector<bool> out(indicators.size());
  for (size_t i = 0; i < indicators.size(); ++i) {
    out[i] = mechanisms_[i].Perturb(indicators[i], rng);
  }
  return out;
}

StatusOr<double> PatternRandomizedResponse::ResponseProbability(
    const std::vector<bool>& indicators,
    const std::vector<bool>& response) const {
  if (indicators.size() != mechanisms_.size() ||
      response.size() != mechanisms_.size()) {
    return Status::InvalidArgument("vector length mismatch");
  }
  double prob = 1.0;
  for (size_t i = 0; i < mechanisms_.size(); ++i) {
    double p_true = mechanisms_[i].TrueOutputProbability(indicators[i]);
    prob *= response[i] ? p_true : (1.0 - p_true);
  }
  return prob;
}

}  // namespace pldp
