// Copyright 2026 The PLDP Authors.

#include "dp/laplace.h"

#include <cmath>

#include "common/strings.h"

namespace pldp {

StatusOr<LaplaceMechanism> LaplaceMechanism::Create(double sensitivity,
                                                    double epsilon) {
  if (!(sensitivity > 0.0) || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument(
        StrFormat("sensitivity must be > 0, got %g", sensitivity));
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        StrFormat("epsilon must be > 0, got %g", epsilon));
  }
  return LaplaceMechanism(sensitivity, epsilon);
}

double LaplaceMechanism::AddNoise(double value, Rng* rng) const {
  return value + rng->Laplace(scale());
}

namespace {
// Laplace(v, b) CDF at x.
double LaplaceCdf(double x, double v, double b) {
  double z = (x - v) / b;
  return z < 0.0 ? 0.5 * std::exp(z) : 1.0 - 0.5 * std::exp(-z);
}
}  // namespace

double LaplaceMechanism::IntervalProbability(double value, double a,
                                             double b) const {
  if (b <= a) return 0.0;
  double s = scale();
  return LaplaceCdf(b, value, s) - LaplaceCdf(a, value, s);
}

}  // namespace pldp
