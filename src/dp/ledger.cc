// Copyright 2026 The PLDP Authors.

#include "dp/ledger.h"

namespace pldp {

Status PatternBudgetLedger::Grant(PatternId pattern, double epsilon) {
  if (accounts_.count(pattern) > 0) {
    return Status::AlreadyExists("pattern " + std::to_string(pattern) +
                                 " already has a budget grant");
  }
  PLDP_ASSIGN_OR_RETURN(BudgetAccountant acc,
                        BudgetAccountant::Create(epsilon));
  accounts_.emplace(pattern, std::move(acc));
  return Status::OK();
}

bool PatternBudgetLedger::HasGrant(PatternId pattern) const {
  return accounts_.count(pattern) > 0;
}

Status PatternBudgetLedger::Charge(PatternId pattern, double epsilon,
                                   std::string note) {
  auto it = accounts_.find(pattern);
  if (it == accounts_.end()) {
    return Status::NotFound("pattern " + std::to_string(pattern) +
                            " has no budget grant");
  }
  PLDP_RETURN_IF_ERROR(it->second.Spend(epsilon));
  entries_.push_back(LedgerEntry{pattern, epsilon, std::move(note)});
  return Status::OK();
}

StatusOr<double> PatternBudgetLedger::Remaining(PatternId pattern) const {
  auto it = accounts_.find(pattern);
  if (it == accounts_.end()) {
    return Status::NotFound("pattern " + std::to_string(pattern) +
                            " has no budget grant");
  }
  return it->second.remaining();
}

double PatternBudgetLedger::TotalGranted() const {
  double total = 0.0;
  for (const auto& [id, acc] : accounts_) total += acc.total();
  return total;
}

double PatternBudgetLedger::TotalSpent() const {
  double total = 0.0;
  for (const auto& [id, acc] : accounts_) total += acc.spent();
  return total;
}

}  // namespace pldp
