// Copyright 2026 The PLDP Authors.

#include "dp/composition.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace pldp {

namespace {
Status ValidateEpsilons(const std::vector<double>& epsilons) {
  for (double e : epsilons) {
    if (e < 0.0 || !std::isfinite(e)) {
      return Status::InvalidArgument("epsilons must be >= 0 and finite");
    }
  }
  return Status::OK();
}
}  // namespace

StatusOr<double> ComposeSequential(const std::vector<double>& epsilons) {
  PLDP_RETURN_IF_ERROR(ValidateEpsilons(epsilons));
  return StableSum(epsilons);
}

StatusOr<double> ComposeParallel(const std::vector<double>& epsilons) {
  if (epsilons.empty()) {
    return Status::InvalidArgument("parallel composition of zero mechanisms");
  }
  PLDP_RETURN_IF_ERROR(ValidateEpsilons(epsilons));
  return *std::max_element(epsilons.begin(), epsilons.end());
}

}  // namespace pldp
