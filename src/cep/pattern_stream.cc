// Copyright 2026 The PLDP Authors.

#include "cep/pattern_stream.h"

#include <algorithm>

namespace pldp {

std::vector<PatternMatch> PatternStream::OfPattern(PatternId id) const {
  std::vector<PatternMatch> out;
  for (const PatternMatch& m : matches_) {
    if (m.pattern == id) out.push_back(m);
  }
  return out;
}

bool PatternStream::InstancesOverlap(size_t i, size_t j) const {
  const PatternMatch& a = matches_[i];
  const PatternMatch& b = matches_[j];
  if (a.window_index != b.window_index) return false;
  for (size_t pa : a.event_positions) {
    if (std::find(b.event_positions.begin(), b.event_positions.end(), pa) !=
        b.event_positions.end()) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<size_t, size_t>> PatternStream::OverlappingPairs()
    const {
  std::vector<std::pair<size_t, size_t>> out;
  // Matches are ordered by window; restrict the quadratic scan to runs of
  // equal window_index.
  size_t run_start = 0;
  for (size_t i = 0; i <= matches_.size(); ++i) {
    if (i == matches_.size() ||
        matches_[i].window_index != matches_[run_start].window_index) {
      for (size_t a = run_start; a < i; ++a) {
        for (size_t b = a + 1; b < i; ++b) {
          if (InstancesOverlap(a, b)) out.emplace_back(a, b);
        }
      }
      run_start = i;
    }
  }
  return out;
}

StatusOr<PatternStream> BuildPatternStream(const std::vector<Window>& windows,
                                           const PatternRegistry& registry) {
  PatternStream stream;
  for (size_t w = 0; w < windows.size(); ++w) {
    for (PatternId p = 0; p < registry.size(); ++p) {
      PLDP_ASSIGN_OR_RETURN(
          auto match, FindMatchInWindow(windows[w], registry.Get(p), p, w));
      if (match.has_value()) stream.Append(std::move(*match));
    }
  }
  return stream;
}

}  // namespace pldp
