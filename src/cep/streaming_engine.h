// Copyright 2026 The PLDP Authors.
//
// Online CEP engine: the production-style counterpart to the window-batch
// evaluation path. It subscribes to a stream replay (stream/replay.h) and
// feeds every event to one incremental matcher per registered query,
// emitting detections the moment they complete — no window materialization.
//
// The window-batch engine (engine.h) is what the paper's evaluation uses
// (per-window binary answers); this engine exists because a deployed
// trusted CEP middleware ingests events online. A property test
// (tests/streaming_engine_test.cc) pins the equivalence of the two paths
// on tumbling windows.
//
// DEPRECATED as a user-facing facade: new serving code should declare its
// queries through `PipelineBuilder` (api/pipeline_builder.h) — a 1-shard
// budget plans exactly this engine, with typed handles and the Finish()
// result gate. This class remains the planner's sequential execution
// target and the per-shard engine of the runtime.

#ifndef PLDP_CEP_STREAMING_ENGINE_H_
#define PLDP_CEP_STREAMING_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cep/matcher.h"
#include "cep/pattern.h"
#include "common/status.h"
#include "stream/replay.h"

namespace pldp {

/// A detection emitted by the streaming engine.
struct StreamingDetection {
  /// Which registered query fired.
  size_t query_index = 0;
  /// When the completing event arrived.
  Timestamp at = 0;
};

/// Callback invoked on every detection (optional).
using DetectionCallback = std::function<void(const StreamingDetection&)>;

/// Event-at-a-time CEP engine.
class StreamingCepEngine : public StreamSubscriber {
 public:
  StreamingCepEngine() = default;

  /// Registers a continuous query: detect `pattern` with all elements within
  /// `window` time units (<= 0: unbounded). Returns the query index.
  StatusOr<size_t> AddQuery(Pattern pattern, Timestamp window);

  /// Registers a detection callback (called synchronously from OnEvent).
  void SetCallback(DetectionCallback callback) {
    callback_ = std::move(callback);
  }

  size_t query_count() const { return matchers_.size(); }

  /// Detections of one query so far (timestamps of completion).
  StatusOr<std::vector<Timestamp>> DetectionsOf(size_t query_index) const;

  /// Total number of detections across queries.
  size_t total_detections() const { return total_detections_; }

  /// Number of events ingested.
  size_t events_processed() const { return events_processed_; }

  /// Sorted distinct union of the event types any registered pattern
  /// references. An event whose type is absent from this set is a no-op
  /// for every matcher — the contract the shard pop loop's batch
  /// prefilter (cep/predicate.h TypeAnyOfPredicate) relies on.
  std::vector<EventTypeId> RelevantEventTypes() const;

  /// Clears all matcher state and counters (queries stay registered).
  void ResetState();

  // StreamSubscriber:
  Status OnEvent(const Event& event) override;

 private:
  std::vector<std::unique_ptr<IncrementalMatcher>> matchers_;
  std::vector<Pattern> patterns_;
  DetectionCallback callback_;
  size_t total_detections_ = 0;
  size_t events_processed_ = 0;
};

}  // namespace pldp

#endif  // PLDP_CEP_STREAMING_ENGINE_H_
