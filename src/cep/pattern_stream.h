// Copyright 2026 The PLDP Authors.
//
// Pattern streams (paper §III-A): the abstraction of an event stream into
// the sequence of detected pattern instances S^P = (P_1, P_2, ...).
//
// Instance-level overlap ("overlapping patterns") is defined here: two
// pattern instances overlap when they share at least one concrete event
// occurrence. The paper notes that overlapping/repeating patterns receive
// independent mechanism applications, which only adds noise — the DP
// guarantee is unaffected; `OverlapReport` lets callers quantify this.

#ifndef PLDP_CEP_PATTERN_STREAM_H_
#define PLDP_CEP_PATTERN_STREAM_H_

#include <vector>

#include "cep/matcher.h"
#include "cep/pattern.h"
#include "common/status.h"
#include "stream/window.h"

namespace pldp {

/// Ordered sequence of detected pattern instances.
class PatternStream {
 public:
  PatternStream() = default;

  void Append(PatternMatch match) { matches_.push_back(std::move(match)); }

  size_t size() const { return matches_.size(); }
  bool empty() const { return matches_.empty(); }
  const PatternMatch& operator[](size_t i) const { return matches_[i]; }
  const std::vector<PatternMatch>& matches() const { return matches_; }

  /// Instances of one pattern type.
  std::vector<PatternMatch> OfPattern(PatternId id) const;

  /// True if instances i and j share an event occurrence
  /// (same window and same event position).
  bool InstancesOverlap(size_t i, size_t j) const;

  /// All unordered overlapping instance pairs.
  std::vector<std::pair<size_t, size_t>> OverlappingPairs() const;

 private:
  std::vector<PatternMatch> matches_;
};

/// Detects all registered patterns in every window (first match per pattern
/// per window; the binary-query semantics need existence only) and returns
/// the combined pattern stream ordered by (window, pattern id).
StatusOr<PatternStream> BuildPatternStream(const std::vector<Window>& windows,
                                           const PatternRegistry& registry);

}  // namespace pldp

#endif  // PLDP_CEP_PATTERN_STREAM_H_
