// Copyright 2026 The PLDP Authors.

#include "cep/correlation_key.h"

#include <cstring>
#include <utility>

#include "common/random.h"

namespace pldp {
namespace {

// 64-bit FNV-1a over raw bytes: deterministic across platforms, good
// avalanche once finished below.
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvBytes(uint64_t h, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

// Final mix so dense payloads spread over the full key space before the
// router's range reduction — the same stateless scrambling router.cc uses.
uint64_t Finish(uint64_t h) { return SplitMix64(h).Next(); }

}  // namespace

Status ValidateCorrelationKeySpec(const CorrelationKeySpec& spec) {
  const bool wants_attribute =
      spec.kind == CorrelationKeySpec::Kind::kAttribute;
  if (wants_attribute && spec.attribute.empty()) {
    return Status::InvalidArgument(
        "correlation spec kAttribute requires a non-empty attribute name");
  }
  if (!wants_attribute && !spec.attribute.empty()) {
    return Status::InvalidArgument(
        "correlation spec carries an attribute name its kind ignores");
  }
  return Status::OK();
}

uint64_t CorrelationValueKey(const Value& value) {
  uint64_t h = kFnvOffset;
  // Both text kinds hash under the kString tag (see the text case below).
  const auto tag = static_cast<unsigned char>(
      value.kind() == ValueKind::kSymbol ? ValueKind::kString : value.kind());
  h = FnvBytes(h, &tag, 1);
  switch (value.kind()) {
    case ValueKind::kBool: {
      const unsigned char b = value.AsBool().value() ? 1 : 0;
      h = FnvBytes(h, &b, 1);
      break;
    }
    case ValueKind::kInt: {
      const int64_t i = value.AsInt().value();
      h = FnvBytes(h, &i, sizeof(i));
      break;
    }
    case ValueKind::kDouble: {
      // Normalize -0.0 to 0.0 so values that compare equal share a key.
      double d = value.AsDouble().value();
      if (d == 0.0) d = 0.0;
      uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      h = FnvBytes(h, &bits, sizeof(bits));
      break;
    }
    case ValueKind::kString:
    case ValueKind::kSymbol: {
      // Hash the text content through the non-copying view — never
      // materialize a std::string per event. Symbols hash their interned
      // name (not the id) under the kString tag, so an interned payload
      // and an owned string with equal content share a key, matching
      // Value::operator=='s cross-kind text equality.
      const std::string_view s = value.AsStringView().value();
      h = FnvBytes(h, s.data(), s.size());
      break;
    }
  }
  return Finish(h);
}

StatusOr<CorrelationKeyFn> MakeCorrelationKeyFn(
    const CorrelationKeySpec& spec) {
  PLDP_RETURN_IF_ERROR(ValidateCorrelationKeySpec(spec));
  switch (spec.kind) {
    case CorrelationKeySpec::Kind::kGlobal:
      return CorrelationKeyFn([](const Event&) { return uint64_t{0}; });
    case CorrelationKeySpec::Kind::kSubject:
      return CorrelationKeyFn([](const Event& e) {
        return static_cast<uint64_t>(e.stream());
      });
    case CorrelationKeySpec::Kind::kEventType:
      return CorrelationKeyFn([](const Event& e) {
        return static_cast<uint64_t>(e.type());
      });
    case CorrelationKeySpec::Kind::kAttribute:
      // Bind step: resolve the name to its AttrId once, here — get-or-
      // create so the binding holds whether events carrying the attribute
      // are constructed before or after the spec is compiled. Per-event
      // extraction is then an integer lookup plus a copy-free hash.
      return CorrelationKeyFn(
          [id = AttrNames().Intern(spec.attribute)](const Event& e)
              -> uint64_t {
            const Value* v = e.FindAttribute(id);
            // Missing attribute: key 0, co-located with the global
            // partition so such events are never silently dropped.
            return v != nullptr ? CorrelationValueKey(*v) : 0;
          });
  }
  return Status::InvalidArgument("unknown correlation key kind");
}

StatusOr<CorrelationKeySpec> SuggestCorrelationSpec(
    const std::vector<Pattern>& cross_patterns) {
  if (cross_patterns.empty()) {
    return Status::InvalidArgument(
        "cannot suggest a correlation spec for zero patterns");
  }
  for (const Pattern& p : cross_patterns) {
    if (p.DistinctTypes().size() != 1) {
      return CorrelationKeySpec::Global();
    }
  }
  return CorrelationKeySpec::ByEventType();
}

}  // namespace pldp
