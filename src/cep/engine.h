// Copyright 2026 The PLDP Authors.
//
// The plain (non-private) CEP engine.
//
// `CepEngine` owns the event-type and pattern registries, accepts query
// registrations, and evaluates streams window-by-window into binary answer
// series. It is the substrate that both ground-truth evaluation and the
// privacy-preserving engine (core/private_engine.h) build on.
//
// For *serving* workloads prefer `PipelineBuilder` (api/pipeline_builder.h);
// this window-batch engine stays the evaluation-path substrate.

#ifndef PLDP_CEP_ENGINE_H_
#define PLDP_CEP_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cep/matcher.h"
#include "cep/pattern.h"
#include "cep/pattern_stream.h"
#include "cep/query.h"
#include "common/status.h"
#include "stream/event_stream.h"
#include "stream/window.h"

namespace pldp {

/// Window-based CEP engine with binary continuous queries.
class CepEngine {
 public:
  CepEngine() = default;

  /// Interns an event type name.
  EventTypeId InternEventType(const std::string& name) {
    return event_types_.Intern(name);
  }

  const EventTypeRegistry& event_types() const { return event_types_; }
  EventTypeRegistry* mutable_event_types() { return &event_types_; }

  /// Registers a pattern type.
  StatusOr<PatternId> RegisterPattern(Pattern pattern) {
    return patterns_.Register(std::move(pattern));
  }

  const PatternRegistry& patterns() const { return patterns_; }
  PatternRegistry* mutable_patterns() { return &patterns_; }

  /// Registers a continuous binary query against a registered pattern.
  StatusOr<QueryId> RegisterQuery(const std::string& name, PatternId target);

  const std::vector<BinaryQuery>& queries() const { return queries_; }

  /// Evaluates one query over a window sequence: answer[w] = "target
  /// pattern occurs in window w".
  StatusOr<AnswerSeries> EvaluateQuery(const std::vector<Window>& windows,
                                       QueryId query) const;

  /// Evaluates every registered query; result is indexed by QueryId.
  StatusOr<std::vector<AnswerSeries>> EvaluateAll(
      const std::vector<Window>& windows) const;

  /// Abstraction of the windows into the detected pattern stream.
  StatusOr<PatternStream> Abstract(const std::vector<Window>& windows) const {
    return BuildPatternStream(windows, patterns_);
  }

 private:
  EventTypeRegistry event_types_;
  PatternRegistry patterns_;
  std::vector<BinaryQuery> queries_;
};

}  // namespace pldp

#endif  // PLDP_CEP_ENGINE_H_
