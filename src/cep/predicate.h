// Copyright 2026 The PLDP Authors.
//
// Event predicates: the filter language of the CEP engine.
//
// A predicate decides whether a single event is "of interest" for a pattern
// element. The taxi experiment uses attribute predicates (cell membership);
// the synthetic experiment uses plain type predicates. Predicates compose
// with And/Or/Not.
//
// Bind step: the Make* factories compile each predicate against the
// process-wide interning tables (event/symbol_table.h) once, at
// query-registration time — attribute names resolve to `AttrId`s and
// string constants to `SymbolId`s. Per-event evaluation is then integer
// lookups over the event's inline attribute buffer plus, for interned
// payloads, a single id comparison: no string compares, no allocation.
// Because the tables are get-or-create, binding works whether the
// predicate or the first event carrying the attribute is created first.

#ifndef PLDP_CEP_PREDICATE_H_
#define PLDP_CEP_PREDICATE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "event/event.h"

namespace pldp {

/// Comparison operators for attribute predicates.
enum class CompareOp : int { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpToString(CompareOp op);

/// Boolean condition over one event.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Evaluates against `event`. Errors propagate (e.g. missing attribute
  /// with `require_attribute` semantics). Runs once per event per pattern
  /// element on worker threads — implementations must stay allocation-free
  /// (integer lookups over pre-interned ids; see the bind step above).
  PLDP_HOT virtual StatusOr<bool> Eval(const Event& event) const = 0;

  /// Batch evaluation: sets bit i of `mask` (LSB-first within each 64-bit
  /// word, word i/64) iff `events[i]` satisfies the predicate; every
  /// remaining bit of each touched word is cleared. `mask` must hold
  /// (events.size() + 63) / 64 words. An event whose Eval would error counts
  /// as not matching — batch callers use the mask as a prefilter, never
  /// for error reporting; the Eval↔EvalBatch agreement (modulo that error
  /// mapping) is pinned by predicate equivalence tests. The base
  /// implementation is the scalar fallback; leaf predicates over bound
  /// integer compares override it with a structure-friendly loop the
  /// compiler can vectorize.
  PLDP_HOT virtual void EvalBatch(EventSpan events, uint64_t* mask) const;

  /// Human-readable rendering for diagnostics.
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// Always true.
PredicatePtr MakeTrue();

/// Event type equals `type`.
PredicatePtr MakeTypeIs(EventTypeId type);

/// Numeric comparison `event[attr] <op> constant`; events lacking the
/// attribute evaluate to false (absent data cannot satisfy a filter).
PredicatePtr MakeNumericCompare(std::string attr, CompareOp op,
                                double constant);

/// String equality `event[attr] == constant` (kNe for inequality); absent
/// attribute evaluates to false.
PredicatePtr MakeStringCompare(std::string attr, CompareOp op,
                               std::string constant);

/// `event[attr]` is an integer contained in `members`. Used for
/// "cell in private area" conditions; absent attribute evaluates to false.
PredicatePtr MakeIntSetMember(std::string attr, std::vector<int64_t> members);

/// Conjunction / disjunction / negation.
PredicatePtr MakeAnd(std::vector<PredicatePtr> operands);
PredicatePtr MakeOr(std::vector<PredicatePtr> operands);
PredicatePtr MakeNot(PredicatePtr operand);

/// Set-membership over event types — the shard pop loop's engine-relevance
/// prefilter (one vectorizable type-compare pass per burst instead of a
/// per-event matcher dispatch). Exposed as a concrete class because the
/// runtime needs the strided entry point below; everything else should go
/// through MakeTypeAnyOf.
class TypeAnyOfPredicate final : public Predicate {
 public:
  /// Duplicates are fine; the set is sorted/deduped at bind time. Small
  /// type universes (max id < 2^16) compile to a bitmap, larger ones to a
  /// sorted binary search.
  explicit TypeAnyOfPredicate(std::vector<EventTypeId> types);

  PLDP_HOT StatusOr<bool> Eval(const Event& event) const override;
  PLDP_HOT void EvalBatch(EventSpan events, uint64_t* mask) const override;
  std::string ToString() const override;

  /// EvalBatch over events embedded in larger records (e.g. the runtime's
  /// StampedEvent): `first` points at the Event inside record 0 and
  /// consecutive records sit `stride_bytes` apart. Same mask contract as
  /// EvalBatch.
  PLDP_HOT void EvalTypesStrided(const Event* first, size_t stride_bytes,
                                 size_t count, uint64_t* mask) const;

  size_t type_count() const { return sorted_.size(); }

 private:
  PLDP_HOT bool Contains(EventTypeId type) const {
    if (!bits_.empty()) {
      return type <= max_type_ &&
             ((bits_[type >> 6] >> (type & 63)) & uint64_t{1}) != 0;
    }
    return std::binary_search(sorted_.begin(), sorted_.end(), type);
  }

  std::vector<EventTypeId> sorted_;
  std::vector<uint64_t> bits_;  ///< bitmap form (empty = binary search)
  EventTypeId max_type_ = 0;
};

std::shared_ptr<const TypeAnyOfPredicate> MakeTypeAnyOf(
    std::vector<EventTypeId> types);

}  // namespace pldp

#endif  // PLDP_CEP_PREDICATE_H_
