// Copyright 2026 The PLDP Authors.
//
// Event predicates: the filter language of the CEP engine.
//
// A predicate decides whether a single event is "of interest" for a pattern
// element. The taxi experiment uses attribute predicates (cell membership);
// the synthetic experiment uses plain type predicates. Predicates compose
// with And/Or/Not.
//
// Bind step: the Make* factories compile each predicate against the
// process-wide interning tables (event/symbol_table.h) once, at
// query-registration time — attribute names resolve to `AttrId`s and
// string constants to `SymbolId`s. Per-event evaluation is then integer
// lookups over the event's inline attribute buffer plus, for interned
// payloads, a single id comparison: no string compares, no allocation.
// Because the tables are get-or-create, binding works whether the
// predicate or the first event carrying the attribute is created first.

#ifndef PLDP_CEP_PREDICATE_H_
#define PLDP_CEP_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "event/event.h"

namespace pldp {

/// Comparison operators for attribute predicates.
enum class CompareOp : int { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpToString(CompareOp op);

/// Boolean condition over one event.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Evaluates against `event`. Errors propagate (e.g. missing attribute
  /// with `require_attribute` semantics). Runs once per event per pattern
  /// element on worker threads — implementations must stay allocation-free
  /// (integer lookups over pre-interned ids; see the bind step above).
  PLDP_HOT virtual StatusOr<bool> Eval(const Event& event) const = 0;

  /// Human-readable rendering for diagnostics.
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// Always true.
PredicatePtr MakeTrue();

/// Event type equals `type`.
PredicatePtr MakeTypeIs(EventTypeId type);

/// Numeric comparison `event[attr] <op> constant`; events lacking the
/// attribute evaluate to false (absent data cannot satisfy a filter).
PredicatePtr MakeNumericCompare(std::string attr, CompareOp op,
                                double constant);

/// String equality `event[attr] == constant` (kNe for inequality); absent
/// attribute evaluates to false.
PredicatePtr MakeStringCompare(std::string attr, CompareOp op,
                               std::string constant);

/// `event[attr]` is an integer contained in `members`. Used for
/// "cell in private area" conditions; absent attribute evaluates to false.
PredicatePtr MakeIntSetMember(std::string attr, std::vector<int64_t> members);

/// Conjunction / disjunction / negation.
PredicatePtr MakeAnd(std::vector<PredicatePtr> operands);
PredicatePtr MakeOr(std::vector<PredicatePtr> operands);
PredicatePtr MakeNot(PredicatePtr operand);

}  // namespace pldp

#endif  // PLDP_CEP_PREDICATE_H_
