// Copyright 2026 The PLDP Authors.
//
// Correlation keys for cross-subject pattern matching.
//
// The sharded runtime partitions events by data subject, which makes every
// per-subject pattern shard-local — but a pattern that correlates events
// *across* subjects ("three distinct vehicles enter the area within a
// minute") sees only fragments of its matches on any one shard. The
// standard dataflow fix is a repartition/exchange stage: re-key each event
// by a *correlation key* chosen so that all events of one potential match
// share the key, then route by that key onto a second shard layer where
// matching is key-local again.
//
// This header defines the key vocabulary: a `CorrelationKeySpec` describes
// how to derive the key from an event (a named attribute, the event type,
// the subject, or one global key), `MakeCorrelationKeyFn` compiles the spec
// into the hot-path extractor, and `SuggestCorrelationSpec` derives the
// finest safe spec from the registered cross-patterns themselves — the
// "query needs" analysis: keying by event type is only sound when every
// pattern's elements collapse to a single distinct type; anything wider
// needs an attribute the caller knows about, or the global key (all events
// to one correlation partition — always sound, never parallel).

#ifndef PLDP_CEP_CORRELATION_KEY_H_
#define PLDP_CEP_CORRELATION_KEY_H_

#include <functional>
#include <string>
#include <vector>

#include "cep/pattern.h"
#include "common/status.h"
#include "event/event.h"

namespace pldp {

/// Extracts the correlation key from an event. Same shape as the runtime's
/// ShardKeyFn, declared here so cep/ stays independent of runtime/.
using CorrelationKeyFn = std::function<uint64_t(const Event&)>;

/// How to derive the correlation key of an event.
struct CorrelationKeySpec {
  enum class Kind {
    /// Every event maps to key 0: one correlation partition handles all
    /// cross-subject matching. Always correct; the fallback when nothing
    /// finer is safe.
    kGlobal,
    /// Key = subject id (Event::stream()). Degenerates to the stage-1
    /// partitioning; only useful for diagnostics and tests.
    kSubject,
    /// Key = event type id. Sound only when every cross pattern has one
    /// distinct element type (see SuggestCorrelationSpec).
    kEventType,
    /// Key = hash of a named attribute's value (e.g. a region or tenant
    /// attribute shared by all events of a potential match). Events lacking
    /// the attribute map to key 0 and co-locate with the global partition.
    kAttribute,
  };

  Kind kind = Kind::kGlobal;
  /// Attribute name; required iff kind == kAttribute.
  std::string attribute;

  static CorrelationKeySpec Global() { return {Kind::kGlobal, {}}; }
  static CorrelationKeySpec Subject() { return {Kind::kSubject, {}}; }
  static CorrelationKeySpec ByEventType() { return {Kind::kEventType, {}}; }
  static CorrelationKeySpec ByAttribute(std::string name) {
    return {Kind::kAttribute, std::move(name)};
  }
};

/// InvalidArgument when the spec is malformed (kAttribute without a name,
/// or a name on a kind that ignores it).
Status ValidateCorrelationKeySpec(const CorrelationKeySpec& spec);

/// Deterministic, platform-independent hash of an attribute value.
/// Equal values (including int/bool payloads that compare equal, both
/// zeros of double, and interned-symbol vs owned-string text with equal
/// content) produce equal keys. Allocation-free: text payloads hash
/// through Value::AsStringView.
uint64_t CorrelationValueKey(const Value& value);

/// Compiles the spec into the per-event extractor used on the shard
/// workers' hot path, resolving any attribute name to its interned AttrId
/// once (the bind step — per-event extraction is integer lookups only).
/// Fails on malformed specs.
StatusOr<CorrelationKeyFn> MakeCorrelationKeyFn(const CorrelationKeySpec& spec);

/// The finest correlation spec that keeps every given pattern's matches
/// key-local without attribute knowledge: kEventType when every pattern
/// collapses to exactly one distinct element type, kGlobal otherwise.
/// (An attribute-based spec is finer still, but only the caller knows which
/// attribute all match participants share.) Fails on an empty pattern set.
StatusOr<CorrelationKeySpec> SuggestCorrelationSpec(
    const std::vector<Pattern>& cross_patterns);

}  // namespace pldp

#endif  // PLDP_CEP_CORRELATION_KEY_H_
