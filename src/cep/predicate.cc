// Copyright 2026 The PLDP Authors.

#include "cep/predicate.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace pldp {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

void Predicate::EvalBatch(EventSpan events, uint64_t* mask) const {
  // Scalar fallback, word-accumulated so overrides and the base agree on
  // the exact mask layout. An erroring Eval maps to a clear bit (see the
  // header contract).
  const size_t words = (events.size() + 63) / 64;
  size_t i = 0;
  for (size_t w = 0; w < words; ++w) {
    const size_t remaining = events.size() - w * 64;
    const size_t limit = remaining < 64 ? remaining : 64;
    uint64_t bits = 0;
    for (size_t b = 0; b < limit; ++b, ++i) {
      const StatusOr<bool> r = Eval(events[i]);
      bits |= uint64_t{r.ok() && r.value()} << b;
    }
    mask[w] = bits;
  }
}

namespace {

PLDP_HOT bool CompareDoubles(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

class TruePredicate final : public Predicate {
 public:
  PLDP_HOT StatusOr<bool> Eval(const Event&) const override { return true; }
  std::string ToString() const override { return "true"; }
};

class TypeIsPredicate final : public Predicate {
 public:
  explicit TypeIsPredicate(EventTypeId type) : type_(type) {}

  PLDP_HOT StatusOr<bool> Eval(const Event& event) const override {
    return event.type() == type_;
  }

  PLDP_HOT void EvalBatch(EventSpan events, uint64_t* mask) const override {
    // One integer compare per event, no StatusOr and no virtual dispatch
    // inside the loop — the shape the vectorizer wants.
    const EventTypeId want = type_;
    const size_t words = (events.size() + 63) / 64;
    size_t i = 0;
    for (size_t w = 0; w < words; ++w) {
      const size_t remaining = events.size() - w * 64;
      const size_t limit = remaining < 64 ? remaining : 64;
      uint64_t bits = 0;
      for (size_t b = 0; b < limit; ++b, ++i) {
        bits |= uint64_t{events[i].type() == want} << b;
      }
      mask[w] = bits;
    }
  }

  std::string ToString() const override {
    return StrFormat("type==%u", type_);
  }

 private:
  EventTypeId type_;
};

class NumericComparePredicate final : public Predicate {
 public:
  NumericComparePredicate(std::string attr, CompareOp op, double constant)
      : attr_(std::move(attr)),
        attr_id_(AttrNames().Intern(attr_)),  // the bind step (see header)
        op_(op),
        constant_(constant) {}

  PLDP_HOT StatusOr<bool> Eval(const Event& event) const override {
    const Value* v = event.FindAttribute(attr_id_);
    if (v == nullptr) return false;
    PLDP_ASSIGN_OR_RETURN(double num, v->AsNumeric());
    return CompareDoubles(num, op_, constant_);
  }

  std::string ToString() const override {
    return StrFormat("%s %s %g", attr_.c_str(),
                     std::string(CompareOpToString(op_)).c_str(), constant_);
  }

 private:
  std::string attr_;
  AttrId attr_id_;
  CompareOp op_;
  double constant_;
};

class StringComparePredicate final : public Predicate {
 public:
  StringComparePredicate(std::string attr, CompareOp op, std::string constant)
      : attr_(std::move(attr)),
        attr_id_(AttrNames().Intern(attr_)),
        op_(op),
        constant_(std::move(constant)),
        constant_sym_(SymbolNames().Intern(constant_)) {}

  PLDP_HOT StatusOr<bool> Eval(const Event& event) const override {
    const Value* v = event.FindAttribute(attr_id_);
    if (v == nullptr) return false;
    bool eq;
    if (v->is_symbol()) {
      // Interned payload: symbol ids are unique per content, so one
      // integer comparison decides equality.
      eq = v->AsSymbol().value() == constant_sym_;
    } else {
      PLDP_ASSIGN_OR_RETURN(std::string_view s, v->AsStringView());
      eq = (s == constant_);
    }
    return op_ == CompareOp::kEq ? eq : !eq;
  }

  std::string ToString() const override {
    return StrFormat("%s %s \"%s\"", attr_.c_str(),
                     std::string(CompareOpToString(op_)).c_str(),
                     constant_.c_str());
  }

 private:
  std::string attr_;
  AttrId attr_id_;
  CompareOp op_;
  std::string constant_;
  SymbolId constant_sym_;
};

class IntSetMemberPredicate final : public Predicate {
 public:
  IntSetMemberPredicate(std::string attr, std::vector<int64_t> members)
      : attr_(std::move(attr)),
        attr_id_(AttrNames().Intern(attr_)),
        members_(members.begin(), members.end()) {}

  PLDP_HOT StatusOr<bool> Eval(const Event& event) const override {
    const Value* v = event.FindAttribute(attr_id_);
    if (v == nullptr) return false;
    PLDP_ASSIGN_OR_RETURN(int64_t i, v->AsInt());
    return members_.count(i) > 0;
  }

  std::string ToString() const override {
    return StrFormat("%s in {%zu members}", attr_.c_str(), members_.size());
  }

 private:
  std::string attr_;
  AttrId attr_id_;
  std::unordered_set<int64_t> members_;
};

class AndPredicate final : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> operands)
      : operands_(std::move(operands)) {}

  PLDP_HOT StatusOr<bool> Eval(const Event& event) const override {
    for (const auto& p : operands_) {
      PLDP_ASSIGN_OR_RETURN(bool b, p->Eval(event));
      if (!b) return false;
    }
    return true;
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(operands_.size());
    for (const auto& p : operands_) parts.push_back(p->ToString());
    return "(" + Join(parts, '&') + ")";
  }

 private:
  std::vector<PredicatePtr> operands_;
};

class OrPredicate final : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> operands)
      : operands_(std::move(operands)) {}

  PLDP_HOT StatusOr<bool> Eval(const Event& event) const override {
    for (const auto& p : operands_) {
      PLDP_ASSIGN_OR_RETURN(bool b, p->Eval(event));
      if (b) return true;
    }
    return false;
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(operands_.size());
    for (const auto& p : operands_) parts.push_back(p->ToString());
    return "(" + Join(parts, '|') + ")";
  }

 private:
  std::vector<PredicatePtr> operands_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr operand) : operand_(std::move(operand)) {}

  PLDP_HOT StatusOr<bool> Eval(const Event& event) const override {
    PLDP_ASSIGN_OR_RETURN(bool b, operand_->Eval(event));
    return !b;
  }

  std::string ToString() const override {
    return "!" + operand_->ToString();
  }

 private:
  PredicatePtr operand_;
};

}  // namespace

PredicatePtr MakeTrue() { return std::make_shared<TruePredicate>(); }

PredicatePtr MakeTypeIs(EventTypeId type) {
  return std::make_shared<TypeIsPredicate>(type);
}

PredicatePtr MakeNumericCompare(std::string attr, CompareOp op,
                                double constant) {
  return std::make_shared<NumericComparePredicate>(std::move(attr), op,
                                                   constant);
}

PredicatePtr MakeStringCompare(std::string attr, CompareOp op,
                               std::string constant) {
  return std::make_shared<StringComparePredicate>(std::move(attr), op,
                                                  std::move(constant));
}

PredicatePtr MakeIntSetMember(std::string attr, std::vector<int64_t> members) {
  return std::make_shared<IntSetMemberPredicate>(std::move(attr),
                                                 std::move(members));
}

PredicatePtr MakeAnd(std::vector<PredicatePtr> operands) {
  return std::make_shared<AndPredicate>(std::move(operands));
}

PredicatePtr MakeOr(std::vector<PredicatePtr> operands) {
  return std::make_shared<OrPredicate>(std::move(operands));
}

PredicatePtr MakeNot(PredicatePtr operand) {
  return std::make_shared<NotPredicate>(std::move(operand));
}

TypeAnyOfPredicate::TypeAnyOfPredicate(std::vector<EventTypeId> types)
    : sorted_(std::move(types)) {
  std::sort(sorted_.begin(), sorted_.end());
  sorted_.erase(std::unique(sorted_.begin(), sorted_.end()), sorted_.end());
  if (!sorted_.empty()) max_type_ = sorted_.back();
  if (max_type_ < (EventTypeId{1} << 16)) {
    bits_.assign(static_cast<size_t>(max_type_) / 64 + 1, 0);
    for (EventTypeId t : sorted_) {
      bits_[t >> 6] |= uint64_t{1} << (t & 63);
    }
  }
}

StatusOr<bool> TypeAnyOfPredicate::Eval(const Event& event) const {
  return Contains(event.type());
}

void TypeAnyOfPredicate::EvalBatch(EventSpan events, uint64_t* mask) const {
  EvalTypesStrided(events.data(), sizeof(Event), events.size(), mask);
}

void TypeAnyOfPredicate::EvalTypesStrided(const Event* first,
                                          size_t stride_bytes, size_t count,
                                          uint64_t* mask) const {
  const char* base = reinterpret_cast<const char*>(first);
  const size_t words = (count + 63) / 64;
  size_t i = 0;
  for (size_t w = 0; w < words; ++w) {
    const size_t remaining = count - w * 64;
    const size_t limit = remaining < 64 ? remaining : 64;
    uint64_t bits = 0;
    for (size_t b = 0; b < limit; ++b, ++i) {
      const Event* e =
          reinterpret_cast<const Event*>(base + i * stride_bytes);
      bits |= uint64_t{Contains(e->type())} << b;
    }
    mask[w] = bits;
  }
}

std::string TypeAnyOfPredicate::ToString() const {
  return StrFormat("type in {%zu types}", sorted_.size());
}

std::shared_ptr<const TypeAnyOfPredicate> MakeTypeAnyOf(
    std::vector<EventTypeId> types) {
  return std::make_shared<TypeAnyOfPredicate>(std::move(types));
}

}  // namespace pldp
