// Copyright 2026 The PLDP Authors.

#include "cep/engine.h"

namespace pldp {

StatusOr<QueryId> CepEngine::RegisterQuery(const std::string& name,
                                           PatternId target) {
  if (!patterns_.Contains(target)) {
    return Status::NotFound("query '" + name +
                            "' references unknown pattern id " +
                            std::to_string(target));
  }
  for (const BinaryQuery& q : queries_) {
    if (q.name == name) {
      return Status::AlreadyExists("query already registered: " + name);
    }
  }
  BinaryQuery q;
  q.id = static_cast<QueryId>(queries_.size());
  q.name = name;
  q.target = target;
  queries_.push_back(q);
  return q.id;
}

StatusOr<AnswerSeries> CepEngine::EvaluateQuery(
    const std::vector<Window>& windows, QueryId query) const {
  if (query >= queries_.size()) {
    return Status::NotFound("unknown query id " + std::to_string(query));
  }
  const Pattern& target = patterns_.Get(queries_[query].target);
  AnswerSeries series;
  for (const Window& w : windows) {
    PLDP_ASSIGN_OR_RETURN(bool hit, PatternOccursInWindow(w, target));
    series.Append(hit);
  }
  return series;
}

StatusOr<std::vector<AnswerSeries>> CepEngine::EvaluateAll(
    const std::vector<Window>& windows) const {
  std::vector<AnswerSeries> out;
  out.reserve(queries_.size());
  for (const BinaryQuery& q : queries_) {
    PLDP_ASSIGN_OR_RETURN(auto series, EvaluateQuery(windows, q.id));
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace pldp
