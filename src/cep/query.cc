// Copyright 2026 The PLDP Authors.

#include "cep/query.h"

#include <algorithm>

namespace pldp {

size_t AnswerSeries::PositiveCount() const {
  return static_cast<size_t>(
      std::count(answers_.begin(), answers_.end(), true));
}

StatusOr<size_t> AnswerSeries::HammingDistance(
    const AnswerSeries& other) const {
  if (size() != other.size()) {
    return Status::InvalidArgument("answer series length mismatch: " +
                                   std::to_string(size()) + " vs " +
                                   std::to_string(other.size()));
  }
  size_t d = 0;
  for (size_t i = 0; i < size(); ++i) {
    if (answers_[i] != other.answers_[i]) ++d;
  }
  return d;
}

}  // namespace pldp
