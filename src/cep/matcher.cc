// Copyright 2026 The PLDP Authors.

#include "cep/matcher.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace pldp {

namespace {

// Leftmost-greedy subsequence search for SEQ patterns.
std::optional<std::vector<size_t>> SequencePositions(
    const std::vector<Event>& events, const std::vector<EventTypeId>& elems) {
  std::vector<size_t> positions;
  positions.reserve(elems.size());
  size_t next = 0;
  for (size_t i = 0; i < events.size() && next < elems.size(); ++i) {
    if (events[i].type() == elems[next]) {
      positions.push_back(i);
      ++next;
    }
  }
  if (next == elems.size()) return positions;
  return std::nullopt;
}

// Earliest witnesses for AND patterns with multiset containment.
std::optional<std::vector<size_t>> ConjunctionPositions(
    const std::vector<Event>& events, const std::vector<EventTypeId>& elems) {
  // Required multiplicity per type.
  std::unordered_map<EventTypeId, size_t> need;
  for (EventTypeId t : elems) ++need[t];

  // Earliest occurrence indices per type.
  std::unordered_map<EventTypeId, std::vector<size_t>> found;
  for (size_t i = 0; i < events.size(); ++i) {
    auto it = need.find(events[i].type());
    if (it == need.end()) continue;
    auto& vec = found[events[i].type()];
    if (vec.size() < it->second) vec.push_back(i);
  }
  for (const auto& [type, count] : need) {
    auto it = found.find(type);
    if (it == found.end() || it->second.size() < count) return std::nullopt;
  }
  // Emit positions in pattern-element order, consuming witnesses in order.
  std::unordered_map<EventTypeId, size_t> cursor;
  std::vector<size_t> positions;
  positions.reserve(elems.size());
  for (EventTypeId t : elems) {
    positions.push_back(found[t][cursor[t]++]);
  }
  return positions;
}

std::optional<std::vector<size_t>> DisjunctionPositions(
    const std::vector<Event>& events, const std::vector<EventTypeId>& elems) {
  for (size_t i = 0; i < events.size(); ++i) {
    if (std::find(elems.begin(), elems.end(), events[i].type()) !=
        elems.end()) {
      return std::vector<size_t>{i};
    }
  }
  return std::nullopt;
}

}  // namespace

StatusOr<std::optional<PatternMatch>> FindMatchInWindow(const Window& window,
                                                        const Pattern& pattern,
                                                        PatternId id,
                                                        size_t window_index) {
  if (pattern.length() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  std::optional<std::vector<size_t>> positions;
  switch (pattern.mode()) {
    case DetectionMode::kSequence:
      positions = SequencePositions(window.events, pattern.elements());
      break;
    case DetectionMode::kConjunction:
      positions = ConjunctionPositions(window.events, pattern.elements());
      break;
    case DetectionMode::kDisjunction:
      positions = DisjunctionPositions(window.events, pattern.elements());
      break;
  }
  if (!positions.has_value()) return std::optional<PatternMatch>();
  PatternMatch match;
  match.pattern = id;
  match.window_index = window_index;
  match.event_positions = std::move(*positions);
  Timestamp last = std::numeric_limits<Timestamp>::min();
  for (size_t pos : match.event_positions) {
    last = std::max(last, window.events[pos].timestamp());
  }
  match.detected_at = match.event_positions.empty() ? window.start : last;
  return std::optional<PatternMatch>(std::move(match));
}

StatusOr<bool> PatternOccursInWindow(const Window& window,
                                     const Pattern& pattern) {
  PLDP_ASSIGN_OR_RETURN(auto match, FindMatchInWindow(window, pattern));
  return match.has_value();
}

StatusOr<size_t> CountMatchesInWindow(const Window& window,
                                      const Pattern& pattern) {
  if (pattern.length() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  switch (pattern.mode()) {
    case DetectionMode::kSequence: {
      // Greedy non-overlapping subsequence scans.
      size_t count = 0;
      size_t next = 0;
      for (const Event& e : window.events) {
        if (e.type() == pattern.elements()[next]) {
          if (++next == pattern.length()) {
            ++count;
            next = 0;
          }
        }
      }
      return count;
    }
    case DetectionMode::kConjunction: {
      // Bottleneck multiplicity across required types.
      std::unordered_map<EventTypeId, size_t> need;
      for (EventTypeId t : pattern.elements()) ++need[t];
      size_t count = std::numeric_limits<size_t>::max();
      for (const auto& [type, mult] : need) {
        count = std::min(count, window.CountType(type) / mult);
      }
      return count == std::numeric_limits<size_t>::max() ? 0 : count;
    }
    case DetectionMode::kDisjunction: {
      size_t count = 0;
      for (EventTypeId t : pattern.DistinctTypes()) {
        count += window.CountType(t);
      }
      return count;
    }
  }
  return Status::Internal("unreachable");
}

namespace {

/// Frontier-based online SEQ matcher (see header).
class SequenceIncrementalMatcher final : public IncrementalMatcher {
 public:
  SequenceIncrementalMatcher(Pattern pattern, Timestamp window)
      : pattern_(std::move(pattern)), window_(window) {
    Reset();
  }

  bool OnEvent(const Event& event) override {
    const auto& elems = pattern_.elements();
    const Timestamp t = event.timestamp();
    bool matched = false;
    // Walk prefixes from longest to shortest so one event does not advance
    // the same run twice in a single step.
    for (size_t k = elems.size(); k-- > 0;) {
      if (event.type() != elems[k]) continue;
      Timestamp start;
      if (k == 0) {
        start = t;  // new run begins here
      } else {
        start = best_start_[k - 1];
        if (start == kNoRun) continue;
        if (window_ > 0 && t - start > window_) continue;  // run expired
      }
      if (k + 1 == elems.size()) {
        detections_.push_back(t);
        matched = true;
      } else {
        best_start_[k] = std::max(best_start_[k], start);
      }
    }
    return matched;
  }

  const std::vector<Timestamp>& detections() const override {
    return detections_;
  }

  void Reset() override {
    best_start_.assign(pattern_.length(), kNoRun);
    detections_.clear();
  }

 private:
  static constexpr Timestamp kNoRun = std::numeric_limits<Timestamp>::min();

  Pattern pattern_;
  Timestamp window_;
  // best_start_[k]: latest possible start timestamp of a run that has
  // matched elements [0..k].
  std::vector<Timestamp> best_start_;
  std::vector<Timestamp> detections_;
};

/// Online AND matcher: all distinct types seen within the trailing window.
class ConjunctionIncrementalMatcher final : public IncrementalMatcher {
 public:
  ConjunctionIncrementalMatcher(Pattern pattern, Timestamp window)
      : pattern_(std::move(pattern)), window_(window) {
    Reset();
  }

  bool OnEvent(const Event& event) override {
    auto it = last_seen_.find(event.type());
    if (it == last_seen_.end()) return false;
    it->second = event.timestamp();
    // Detected iff every required type was seen within the trailing window.
    for (const auto& [type, seen] : last_seen_) {
      if (seen == kNever) return false;
      if (window_ > 0 && event.timestamp() - seen > window_) return false;
    }
    detections_.push_back(event.timestamp());
    return true;
  }

  const std::vector<Timestamp>& detections() const override {
    return detections_;
  }

  void Reset() override {
    last_seen_.clear();
    for (EventTypeId t : pattern_.DistinctTypes()) last_seen_[t] = kNever;
    detections_.clear();
  }

 private:
  static constexpr Timestamp kNever = std::numeric_limits<Timestamp>::min();

  Pattern pattern_;
  Timestamp window_;
  std::unordered_map<EventTypeId, Timestamp> last_seen_;
  std::vector<Timestamp> detections_;
};

/// Online OR matcher: any element type triggers.
class DisjunctionIncrementalMatcher final : public IncrementalMatcher {
 public:
  explicit DisjunctionIncrementalMatcher(Pattern pattern)
      : pattern_(std::move(pattern)) {}

  bool OnEvent(const Event& event) override {
    if (!pattern_.ContainsType(event.type())) return false;
    detections_.push_back(event.timestamp());
    return true;
  }

  const std::vector<Timestamp>& detections() const override {
    return detections_;
  }

  void Reset() override { detections_.clear(); }

 private:
  Pattern pattern_;
  std::vector<Timestamp> detections_;
};

}  // namespace

std::unique_ptr<IncrementalMatcher> MakeIncrementalMatcher(
    const Pattern& pattern, Timestamp window) {
  switch (pattern.mode()) {
    case DetectionMode::kSequence:
      return std::make_unique<SequenceIncrementalMatcher>(pattern, window);
    case DetectionMode::kConjunction:
      return std::make_unique<ConjunctionIncrementalMatcher>(pattern, window);
    case DetectionMode::kDisjunction:
      return std::make_unique<DisjunctionIncrementalMatcher>(pattern);
  }
  return nullptr;
}

}  // namespace pldp
