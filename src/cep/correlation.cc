// Copyright 2026 The PLDP Authors.

#include "cep/correlation.h"

#include <algorithm>

namespace pldp {

StatusOr<std::vector<EventPatternCorrelation>>
AnalyzeEventPatternCorrelations(const std::vector<Window>& history,
                                const PatternRegistry& patterns,
                                size_t type_count) {
  if (history.empty()) {
    return Status::InvalidArgument("history must not be empty");
  }
  if (type_count == 0) {
    return Status::InvalidArgument("type_count must be > 0");
  }
  const double n = static_cast<double>(history.size());

  // One pass: per-window presence of each type and each pattern.
  std::vector<size_t> event_hits(type_count, 0);
  std::vector<size_t> pattern_hits(patterns.size(), 0);
  // joint[p * type_count + t]: windows where both occur.
  std::vector<size_t> joint(patterns.size() * type_count, 0);

  std::vector<bool> present(type_count);
  for (const Window& w : history) {
    std::fill(present.begin(), present.end(), false);
    for (const Event& e : w.events) {
      if (e.type() < type_count) present[e.type()] = true;
    }
    for (size_t t = 0; t < type_count; ++t) {
      if (present[t]) ++event_hits[t];
    }
    for (PatternId p = 0; p < patterns.size(); ++p) {
      PLDP_ASSIGN_OR_RETURN(bool hit,
                            PatternOccursInWindow(w, patterns.Get(p)));
      if (!hit) continue;
      ++pattern_hits[p];
      for (size_t t = 0; t < type_count; ++t) {
        if (present[t]) ++joint[p * type_count + t];
      }
    }
  }

  std::vector<EventPatternCorrelation> out;
  out.reserve(patterns.size() * type_count);
  for (PatternId p = 0; p < patterns.size(); ++p) {
    double support_pattern = static_cast<double>(pattern_hits[p]) / n;
    for (size_t t = 0; t < type_count; ++t) {
      EventPatternCorrelation c;
      c.event_type = static_cast<EventTypeId>(t);
      c.pattern = p;
      c.support_event = static_cast<double>(event_hits[t]) / n;
      c.support_pattern = support_pattern;
      if (event_hits[t] > 0) {
        c.confidence = static_cast<double>(joint[p * type_count + t]) /
                       static_cast<double>(event_hits[t]);
      }
      if (support_pattern > 0.0) {
        c.lift = c.confidence / support_pattern;
      }
      out.push_back(c);
    }
  }
  return out;
}

StatusOr<std::vector<EventTypeId>> SuggestRelevantEvents(
    const std::vector<Window>& history, const Pattern& pattern,
    size_t type_count, double min_lift, double min_confidence) {
  PatternRegistry one;
  PLDP_ASSIGN_OR_RETURN(
      Pattern copy,
      Pattern::Create(pattern.name(), pattern.elements(), pattern.mode()));
  PLDP_RETURN_IF_ERROR(one.Register(std::move(copy)).status());
  PLDP_ASSIGN_OR_RETURN(auto correlations,
                        AnalyzeEventPatternCorrelations(history, one,
                                                        type_count));
  std::vector<EventPatternCorrelation> candidates;
  for (const auto& c : correlations) {
    if (pattern.ContainsType(c.event_type)) continue;  // already declared
    if (c.lift >= min_lift && c.confidence >= min_confidence) {
      candidates.push_back(c);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const EventPatternCorrelation& a,
               const EventPatternCorrelation& b) { return a.lift > b.lift; });
  std::vector<EventTypeId> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) out.push_back(c.event_type);
  return out;
}

}  // namespace pldp
