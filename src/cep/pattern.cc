// Copyright 2026 The PLDP Authors.

#include "cep/pattern.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace pldp {

std::string_view DetectionModeToString(DetectionMode mode) {
  switch (mode) {
    case DetectionMode::kSequence:
      return "SEQ";
    case DetectionMode::kConjunction:
      return "AND";
    case DetectionMode::kDisjunction:
      return "OR";
  }
  return "?";
}

StatusOr<Pattern> Pattern::Create(std::string name,
                                  std::vector<EventTypeId> elements,
                                  DetectionMode mode) {
  if (elements.empty()) {
    return Status::InvalidArgument("pattern '" + name +
                                   "' must have at least one element");
  }
  return Pattern(std::move(name), std::move(elements), mode);
}

bool Pattern::ContainsType(EventTypeId type) const {
  return std::find(elements_.begin(), elements_.end(), type) !=
         elements_.end();
}

std::vector<EventTypeId> Pattern::DistinctTypes() const {
  std::vector<EventTypeId> out;
  std::unordered_set<EventTypeId> seen;
  for (EventTypeId t : elements_) {
    if (seen.insert(t).second) out.push_back(t);
  }
  return out;
}

bool Pattern::TypeOverlaps(const Pattern& other) const {
  std::unordered_set<EventTypeId> mine(elements_.begin(), elements_.end());
  return std::any_of(other.elements_.begin(), other.elements_.end(),
                     [&mine](EventTypeId t) { return mine.count(t) > 0; });
}

std::string Pattern::ToString(const EventTypeRegistry* registry) const {
  std::vector<std::string> parts;
  parts.reserve(elements_.size());
  for (EventTypeId t : elements_) {
    if (registry != nullptr) {
      auto n = registry->Name(t);
      parts.push_back(n.ok() ? n.value() : std::to_string(t));
    } else {
      parts.push_back(std::to_string(t));
    }
  }
  return StrFormat("%s=%s(%s)", name_.c_str(),
                   std::string(DetectionModeToString(mode_)).c_str(),
                   Join(parts, ',').c_str());
}

StatusOr<PatternId> PatternRegistry::Register(Pattern pattern) {
  for (const Pattern& p : patterns_) {
    if (p.name() == pattern.name()) {
      return Status::AlreadyExists("pattern already registered: " +
                                   pattern.name());
    }
  }
  PatternId id = static_cast<PatternId>(patterns_.size());
  patterns_.push_back(std::move(pattern));
  return id;
}

StatusOr<PatternId> PatternRegistry::LookupByName(
    const std::string& name) const {
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (patterns_[i].name() == name) return static_cast<PatternId>(i);
  }
  return Status::NotFound("unknown pattern: " + name);
}

std::vector<PatternId> PatternRegistry::TypeOverlapping(PatternId id) const {
  std::vector<PatternId> out;
  if (!Contains(id)) return out;
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (i == id) continue;
    if (patterns_[id].TypeOverlaps(patterns_[i])) {
      out.push_back(static_cast<PatternId>(i));
    }
  }
  return out;
}

}  // namespace pldp
