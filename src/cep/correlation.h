// Copyright 2026 The PLDP Authors.
//
// Event <-> pattern correlation analysis (the paper's §V-C future work).
//
// Data subjects are not privacy experts: their list of events relevant to
// a private pattern can be incomplete, which risks privacy leakage through
// correlated-but-undeclared events. The paper proposes estimating these
// latent relationships from historical data. This module implements that
// estimation with association-rule statistics over the history windows:
//
//   support(e)      = P(e occurs in a window)
//   support(P)      = P(pattern P detected in a window)
//   confidence(e→P) = P(P | e)
//   lift(e→P)       = confidence / support(P)
//
// `SuggestRelevantEvents` surfaces event types that strongly co-occur with
// a private pattern but are not among its declared elements — candidates
// the data subject should consider protecting too.

#ifndef PLDP_CEP_CORRELATION_H_
#define PLDP_CEP_CORRELATION_H_

#include <vector>

#include "cep/matcher.h"
#include "cep/pattern.h"
#include "common/status.h"
#include "stream/window.h"

namespace pldp {

/// Association statistics of one (event type, pattern) pair.
struct EventPatternCorrelation {
  EventTypeId event_type = kInvalidEventType;
  PatternId pattern = kInvalidPattern;
  /// P(event type occurs in a window).
  double support_event = 0.0;
  /// P(pattern detected in a window).
  double support_pattern = 0.0;
  /// P(pattern | event) — 0 when the event never occurs.
  double confidence = 0.0;
  /// confidence / support_pattern — 1 means independence; 0 when the
  /// pattern never occurs.
  double lift = 0.0;
};

/// Computes the statistics for every (type, pattern) pair over `history`.
/// `type_count` bounds the event-type space (registry size). Result is
/// ordered by (pattern, event type).
StatusOr<std::vector<EventPatternCorrelation>>
AnalyzeEventPatternCorrelations(const std::vector<Window>& history,
                                const PatternRegistry& patterns,
                                size_t type_count);

/// Event types correlated with `pattern` (lift >= min_lift and
/// confidence >= min_confidence) that are NOT declared elements of it —
/// the §V-C "latent relationship" candidates. Ordered by descending lift.
StatusOr<std::vector<EventTypeId>> SuggestRelevantEvents(
    const std::vector<Window>& history, const Pattern& pattern,
    size_t type_count, double min_lift = 1.5, double min_confidence = 0.1);

}  // namespace pldp

#endif  // PLDP_CEP_CORRELATION_H_
