// Copyright 2026 The PLDP Authors.
//
// Pattern matching.
//
// Two evaluation styles are provided:
//
//  1. Window-batch matching (`FindMatchInWindow`): given a completed window,
//     decide whether the pattern occurs in it. This is what the evaluation
//     pipeline uses — the paper's queries are binary per window.
//
//  2. Incremental matching (`IncrementalMatcher`): an online automaton fed
//     one event at a time with a time-window constraint, as a production
//     CEP engine would run. Sequence matching uses the standard
//     skip-till-any-match semantics; existence detection is O(m) per event
//     via the "best start" frontier (for each matched prefix length we only
//     need the run with the latest start timestamp — any completion
//     available to an older run is available to it).

#ifndef PLDP_CEP_MATCHER_H_
#define PLDP_CEP_MATCHER_H_

#include <memory>
#include <optional>
#include <vector>

#include "cep/pattern.h"
#include "common/status.h"
#include "stream/window.h"

namespace pldp {

/// Searches `window` for an occurrence of `pattern`.
///
/// Returns the first match (positions in window.events) or nullopt.
///  - kSequence: leftmost-greedy subsequence of the element types.
///  - kConjunction: multiset containment — every element type must occur at
///    least as often as it appears in the pattern; positions are the
///    earliest witnesses.
///  - kDisjunction: any single element type present.
StatusOr<std::optional<PatternMatch>> FindMatchInWindow(
    const Window& window, const Pattern& pattern, PatternId id = 0,
    size_t window_index = 0);

/// Convenience: existence only.
StatusOr<bool> PatternOccursInWindow(const Window& window,
                                     const Pattern& pattern);

/// Counts non-overlapping occurrences (each window event used at most once)
/// — used by count-based baselines.
StatusOr<size_t> CountMatchesInWindow(const Window& window,
                                      const Pattern& pattern);

/// Online matcher: feed events in temporal order; emits a detection per
/// completed match. `window` is the maximum allowed span between the first
/// and last element of one match (<= 0 means unbounded).
class IncrementalMatcher {
 public:
  virtual ~IncrementalMatcher() = default;

  /// Processes one event; returns true if a (new) match completed at it.
  virtual bool OnEvent(const Event& event) = 0;

  /// Matches detected so far (detection timestamps).
  virtual const std::vector<Timestamp>& detections() const = 0;

  /// Resets all partial state.
  virtual void Reset() = 0;
};

/// Creates the incremental matcher appropriate for `pattern.mode()`.
/// The returned matcher keeps a reference-independent copy of the pattern.
std::unique_ptr<IncrementalMatcher> MakeIncrementalMatcher(
    const Pattern& pattern, Timestamp window);

}  // namespace pldp

#endif  // PLDP_CEP_MATCHER_H_
