// Copyright 2026 The PLDP Authors.
//
// Continuous binary queries (paper §V assumption): a data consumer asks,
// per evaluation window, "does target pattern P occur?". The answer series
// over the window sequence is the engine's output, and what the quality
// metrics compare against ground truth.

#ifndef PLDP_CEP_QUERY_H_
#define PLDP_CEP_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cep/pattern.h"
#include "common/status.h"

namespace pldp {

/// Dense identifier of a registered query.
using QueryId = uint32_t;

/// A continuous query: binary existence of one target pattern per window.
struct BinaryQuery {
  QueryId id = 0;
  std::string name;
  PatternId target = kInvalidPattern;
};

/// Answers to one query: element w is the answer for window w.
class AnswerSeries {
 public:
  AnswerSeries() = default;
  explicit AnswerSeries(std::vector<bool> answers)
      : answers_(std::move(answers)) {}

  void Append(bool detected) { answers_.push_back(detected); }

  size_t size() const { return answers_.size(); }
  bool operator[](size_t i) const { return answers_[i]; }
  const std::vector<bool>& answers() const { return answers_; }

  /// Number of positive answers.
  size_t PositiveCount() const;

  /// Hamming distance to another series of the same length (error count).
  StatusOr<size_t> HammingDistance(const AnswerSeries& other) const;

 private:
  std::vector<bool> answers_;
};

}  // namespace pldp

#endif  // PLDP_CEP_QUERY_H_
