// Copyright 2026 The PLDP Authors.

#include "cep/streaming_engine.h"

#include <algorithm>

namespace pldp {

StatusOr<size_t> StreamingCepEngine::AddQuery(Pattern pattern,
                                              Timestamp window) {
  if (pattern.length() == 0) {
    return Status::InvalidArgument("query pattern must not be empty");
  }
  auto matcher = MakeIncrementalMatcher(pattern, window);
  if (matcher == nullptr) {
    return Status::Internal("no matcher for detection mode");
  }
  matchers_.push_back(std::move(matcher));
  patterns_.push_back(std::move(pattern));
  return matchers_.size() - 1;
}

StatusOr<std::vector<Timestamp>> StreamingCepEngine::DetectionsOf(
    size_t query_index) const {
  if (query_index >= matchers_.size()) {
    return Status::OutOfRange("unknown query index " +
                              std::to_string(query_index));
  }
  return matchers_[query_index]->detections();
}

std::vector<EventTypeId> StreamingCepEngine::RelevantEventTypes() const {
  std::vector<EventTypeId> types;
  for (const Pattern& pattern : patterns_) {
    const std::vector<EventTypeId>& elements = pattern.elements();
    types.insert(types.end(), elements.begin(), elements.end());
  }
  std::sort(types.begin(), types.end());
  types.erase(std::unique(types.begin(), types.end()), types.end());
  return types;
}

void StreamingCepEngine::ResetState() {
  for (auto& m : matchers_) m->Reset();
  total_detections_ = 0;
  events_processed_ = 0;
}

Status StreamingCepEngine::OnEvent(const Event& event) {
  ++events_processed_;
  for (size_t q = 0; q < matchers_.size(); ++q) {
    if (matchers_[q]->OnEvent(event)) {
      ++total_detections_;
      if (callback_) {
        callback_(StreamingDetection{q, event.timestamp()});
      }
    }
  }
  return Status::OK();
}

}  // namespace pldp
