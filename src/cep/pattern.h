// Copyright 2026 The PLDP Authors.
//
// Patterns (paper §III-A): a pattern P = seq(e_1, ..., e_m) is a temporal
// combination of events. PLDP represents a *pattern type* (Definition 2) as
// a named sequence of event types plus a detection mode:
//
//   kSequence    — the elements must appear in temporal order within a
//                  window (skip-till-any-match, the classic CEP SEQ).
//   kConjunction — all elements must appear within a window, any order
//                  (the semantics of the paper's synthetic experiment:
//                  "if all three events are contained in one L_m, the
//                  pattern is detected").
//   kDisjunction — any one element suffices (used for area-entry patterns
//                  in the taxi experiment, where a pattern area is a set of
//                  cells).
//
// A *pattern instance* (a concrete detection) is `PatternMatch`.

#ifndef PLDP_CEP_PATTERN_H_
#define PLDP_CEP_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "event/event.h"
#include "event/event_type.h"

namespace pldp {

/// Dense identifier of a registered pattern type.
using PatternId = uint32_t;

inline constexpr PatternId kInvalidPattern = static_cast<PatternId>(-1);

/// How a pattern's elements must co-occur inside a window.
enum class DetectionMode : int {
  kSequence = 0,
  kConjunction = 1,
  kDisjunction = 2,
};

std::string_view DetectionModeToString(DetectionMode mode);

/// A pattern type: named sequence of event types + detection mode.
class Pattern {
 public:
  Pattern() = default;

  /// `elements` must be non-empty.
  static StatusOr<Pattern> Create(std::string name,
                                  std::vector<EventTypeId> elements,
                                  DetectionMode mode);

  const std::string& name() const { return name_; }
  const std::vector<EventTypeId>& elements() const { return elements_; }
  DetectionMode mode() const { return mode_; }

  /// Number of elements m (the paper's pattern length; the privacy budget is
  /// split across exactly these).
  size_t length() const { return elements_.size(); }

  /// True if `type` is an element of this pattern.
  bool ContainsType(EventTypeId type) const;

  /// Distinct element types (an element type may repeat in a sequence).
  std::vector<EventTypeId> DistinctTypes() const;

  /// True if this pattern and `other` share at least one element type —
  /// the static notion behind "overlapping patterns" (paper §III-A):
  /// instances of type-overlapping patterns can share events.
  bool TypeOverlaps(const Pattern& other) const;

  std::string ToString(const EventTypeRegistry* registry = nullptr) const;

 private:
  Pattern(std::string name, std::vector<EventTypeId> elements,
          DetectionMode mode)
      : name_(std::move(name)), elements_(std::move(elements)), mode_(mode) {}

  std::string name_;
  std::vector<EventTypeId> elements_;
  DetectionMode mode_ = DetectionMode::kSequence;
};

/// A concrete detection of a pattern within one window.
struct PatternMatch {
  PatternId pattern = kInvalidPattern;
  /// Index of the window (evaluation point) the match was found in.
  size_t window_index = 0;
  /// Positions (within the window's event vector) of the matched elements,
  /// one per pattern element, in element order. Empty for kDisjunction
  /// matches beyond the single witness.
  std::vector<size_t> event_positions;
  /// Timestamp of the last matched element (the detection time).
  Timestamp detected_at = 0;
};

/// Registry of pattern types; ids are dense and assigned in registration
/// order (deterministic).
class PatternRegistry {
 public:
  /// Registers a pattern, returning its id. Duplicate names are rejected.
  StatusOr<PatternId> Register(Pattern pattern);

  StatusOr<PatternId> LookupByName(const std::string& name) const;

  const Pattern& Get(PatternId id) const { return patterns_[id]; }
  bool Contains(PatternId id) const { return id < patterns_.size(); }
  size_t size() const { return patterns_.size(); }

  /// All pattern ids whose element sets intersect the given pattern's —
  /// used by mechanisms to find which events correlate with private
  /// patterns.
  std::vector<PatternId> TypeOverlapping(PatternId id) const;

 private:
  std::vector<Pattern> patterns_;
};

}  // namespace pldp

#endif  // PLDP_CEP_PATTERN_H_
