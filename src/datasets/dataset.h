// Copyright 2026 The PLDP Authors.
//
// The common shape of an experiment dataset: an event-type space, a window
// sequence (the evaluation points), the registered patterns, and which of
// them are private / target. Both generators (synthetic.h, taxi.h) produce
// this; the evaluation pipeline (core/evaluation.h) consumes it.

#ifndef PLDP_DATASETS_DATASET_H_
#define PLDP_DATASETS_DATASET_H_

#include <vector>

#include "cep/pattern.h"
#include "common/status.h"
#include "event/event_type.h"
#include "stream/window.h"

namespace pldp {

/// A fully prepared experiment dataset.
struct Dataset {
  EventTypeRegistry event_types;
  PatternRegistry patterns;
  /// Evaluation windows, in temporal order.
  std::vector<Window> windows;
  /// Pattern ids the data subjects declared private.
  std::vector<PatternId> private_patterns;
  /// Pattern ids the consumers query (the paper's target patterns).
  std::vector<PatternId> target_patterns;

  /// Splits off the first `fraction` of the windows as history for adaptive
  /// tuning; the remainder is the evaluation set. fraction in (0,1).
  StatusOr<std::pair<std::vector<Window>, std::vector<Window>>> SplitHistory(
      double fraction) const;
};

}  // namespace pldp

#endif  // PLDP_DATASETS_DATASET_H_
