// Copyright 2026 The PLDP Authors.
//
// Synthetic dataset generator — the paper's Algorithm 2.
//
//   1. Define N basic event types e_0..e_{N-1} (paper: N = 20).
//   2. Draw a natural occurrence probability Pr(e_i) ~ U(0,1) per type.
//   3. Produce M windows (paper: M = 1000); within window L_m each type
//      occurs independently with probability Pr(e_i).
//   4. Define K patterns (paper: K = 20), each a random combination of
//      `pattern_length` (paper: 3) event types; a pattern is detected in a
//      window when all its events are contained in it (conjunction).
//   5. Mark `num_private` patterns private and `num_target` target
//      (paper: 3 and 5).
//
// All draws come from one seeded Rng, so a given (options, seed) pair
// reproduces the dataset exactly.

#ifndef PLDP_DATASETS_SYNTHETIC_H_
#define PLDP_DATASETS_SYNTHETIC_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "datasets/dataset.h"

namespace pldp {

/// Parameters of Algorithm 2 (defaults = the paper's values).
struct SyntheticOptions {
  size_t num_event_types = 20;
  size_t num_windows = 1000;
  size_t num_patterns = 20;
  size_t pattern_length = 3;
  size_t num_private = 3;
  size_t num_target = 5;
  /// When true (default), target patterns are drawn from the non-private
  /// ones (disjoint roles, as in Algorithm 2 line 13); correlation between
  /// private and target still arises from shared *event types*. When
  /// false, targets may also be private patterns.
  bool disjoint_roles = true;
  /// Occurrence probabilities Pr(e_i) are clamped into this range; the
  /// paper draws from U(0,1), where extreme values make patterns that never
  /// or always fire. Defaults keep the full range.
  double min_occurrence = 0.0;
  double max_occurrence = 1.0;
};

/// Result of the generator: a Dataset plus the generator's internals that
/// experiments sometimes inspect.
struct SyntheticDataset {
  Dataset dataset;
  /// Pr(e_i) per event type.
  std::vector<double> occurrence_probabilities;
};

/// Runs Algorithm 2 with the given options and seed.
StatusOr<SyntheticDataset> GenerateSynthetic(const SyntheticOptions& options,
                                             uint64_t seed);

}  // namespace pldp

#endif  // PLDP_DATASETS_SYNTHETIC_H_
