// Copyright 2026 The PLDP Authors.

#include "datasets/taxi.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/strings.h"
#include "stream/window.h"

namespace pldp {

namespace {

struct Cell {
  int64_t x = 0;
  int64_t y = 0;
};

int64_t CellId(const Cell& c, size_t width) {
  return c.y * static_cast<int64_t>(width) + c.x;
}

/// One step of the hotspot-biased random walk.
Cell Step(const Cell& cur, const Cell& goal, const TaxiOptions& opt,
          Rng* rng) {
  if (rng->Bernoulli(opt.stay_probability)) return cur;
  Cell next = cur;
  if (rng->Bernoulli(opt.hotspot_bias)) {
    // Move one step toward the goal (Manhattan greedy; x first or y first
    // at random so routes differ).
    bool x_first = rng->Bernoulli(0.5);
    auto step_x = [&]() {
      if (goal.x > next.x) ++next.x;
      else if (goal.x < next.x) --next.x;
    };
    auto step_y = [&]() {
      if (goal.y > next.y) ++next.y;
      else if (goal.y < next.y) --next.y;
    };
    if (x_first) {
      step_x();
      if (next.x == cur.x) step_y();
    } else {
      step_y();
      if (next.y == cur.y) step_x();
    }
  } else {
    // Uniform move among the 4 neighbours (clamped at borders).
    switch (rng->UniformUint64(4)) {
      case 0: ++next.x; break;
      case 1: --next.x; break;
      case 2: ++next.y; break;
      default: --next.y; break;
    }
  }
  next.x = std::clamp<int64_t>(next.x, 0,
                               static_cast<int64_t>(opt.grid_width) - 1);
  next.y = std::clamp<int64_t>(next.y, 0,
                               static_cast<int64_t>(opt.grid_height) - 1);
  return next;
}

}  // namespace

StatusOr<TaxiDataset> GenerateTaxi(const TaxiOptions& options, uint64_t seed) {
  if (options.grid_width == 0 || options.grid_height == 0) {
    return Status::InvalidArgument("grid dimensions must be > 0");
  }
  if (options.num_taxis == 0 || options.num_ticks == 0) {
    return Status::InvalidArgument("fleet size and ticks must be > 0");
  }
  if (options.sampling_interval_s <= 0) {
    return Status::InvalidArgument("sampling interval must be > 0");
  }
  if (options.window_ticks == 0) {
    return Status::InvalidArgument("window span must be > 0");
  }
  if (!(options.private_cell_fraction > 0.0) ||
      options.private_cell_fraction >= 1.0 ||
      !(options.target_cell_fraction > 0.0) ||
      options.target_cell_fraction > 1.0 ||
      options.private_target_overlap < 0.0 ||
      options.private_target_overlap > 1.0) {
    return Status::InvalidArgument("bad area fractions");
  }

  const size_t num_cells = options.grid_width * options.grid_height;
  Rng rng(seed);
  TaxiDataset out;
  Dataset& ds = out.dataset;

  // Event types: one per cell.
  ds.event_types = EventTypeRegistry::MakeDense(num_cells, "cell_");

  // --- Area labelling (paper's proportions) -------------------------------
  size_t num_private = std::max<size_t>(
      1, static_cast<size_t>(std::lround(options.private_cell_fraction *
                                         static_cast<double>(num_cells))));
  std::vector<size_t> shuffled =
      rng.SampleWithoutReplacement(num_cells, num_cells);
  std::unordered_set<size_t> private_set(shuffled.begin(),
                                         shuffled.begin() + num_private);

  // Target = overlap share of the private area + non-private fill up to the
  // overall target fraction.
  size_t overlap_count = static_cast<size_t>(std::lround(
      options.private_target_overlap * static_cast<double>(num_private)));
  size_t total_target = static_cast<size_t>(std::lround(
      options.target_cell_fraction * static_cast<double>(num_cells)));
  std::unordered_set<size_t> target_set;
  // Private cells appear first in `shuffled`; take the overlap from them.
  for (size_t i = 0; i < overlap_count && i < num_private; ++i) {
    target_set.insert(shuffled[i]);
  }
  for (size_t i = num_private;
       i < num_cells && target_set.size() < total_target; ++i) {
    target_set.insert(shuffled[i]);
  }

  for (size_t c : private_set) out.private_cells.push_back(
      static_cast<int64_t>(c));
  for (size_t c : target_set) out.target_cells.push_back(
      static_cast<int64_t>(c));
  std::sort(out.private_cells.begin(), out.private_cells.end());
  std::sort(out.target_cells.begin(), out.target_cells.end());

  // --- Trajectories --------------------------------------------------------
  std::vector<Cell> hotspots;
  hotspots.reserve(std::max<size_t>(options.num_hotspots, 1));
  for (size_t h = 0; h < std::max<size_t>(options.num_hotspots, 1); ++h) {
    hotspots.push_back(
        {static_cast<int64_t>(rng.UniformUint64(options.grid_width)),
         static_cast<int64_t>(rng.UniformUint64(options.grid_height))});
  }

  std::vector<EventStream> per_taxi(options.num_taxis);
  for (size_t taxi = 0; taxi < options.num_taxis; ++taxi) {
    Rng taxi_rng = rng.Fork();
    Cell cur{static_cast<int64_t>(taxi_rng.UniformUint64(options.grid_width)),
             static_cast<int64_t>(taxi_rng.UniformUint64(options.grid_height))};
    Cell goal = hotspots[taxi_rng.UniformUint64(hotspots.size())];
    for (size_t tick = 0; tick < options.num_ticks; ++tick) {
      if (taxi_rng.Bernoulli(options.goal_change_probability)) {
        goal = hotspots[taxi_rng.UniformUint64(hotspots.size())];
      }
      cur = Step(cur, goal, options, &taxi_rng);
      int64_t cell = CellId(cur, options.grid_width);
      Event e(static_cast<EventTypeId>(cell),
              static_cast<Timestamp>(tick) * options.sampling_interval_s,
              static_cast<StreamId>(taxi));
      e.SetAttribute("cell", Value(cell));
      per_taxi[taxi].AppendUnchecked(std::move(e));
    }
  }
  out.merged_stream = MergeStreams(per_taxi);

  // --- Windows --------------------------------------------------------------
  TumblingWindower windower(static_cast<Timestamp>(options.window_ticks) *
                            options.sampling_interval_s);
  PLDP_ASSIGN_OR_RETURN(ds.windows, windower.Apply(out.merged_stream));

  // --- Patterns --------------------------------------------------------------
  // One single-element pattern per private cell and per target cell.
  for (int64_t c : out.private_cells) {
    PLDP_ASSIGN_OR_RETURN(
        Pattern p, Pattern::Create(StrFormat("priv_cell_%lld",
                                             static_cast<long long>(c)),
                                   {static_cast<EventTypeId>(c)},
                                   DetectionMode::kDisjunction));
    PLDP_ASSIGN_OR_RETURN(PatternId id, ds.patterns.Register(std::move(p)));
    ds.private_patterns.push_back(id);
  }
  for (int64_t c : out.target_cells) {
    PLDP_ASSIGN_OR_RETURN(
        Pattern p, Pattern::Create(StrFormat("tgt_cell_%lld",
                                             static_cast<long long>(c)),
                                   {static_cast<EventTypeId>(c)},
                                   DetectionMode::kDisjunction));
    PLDP_ASSIGN_OR_RETURN(PatternId id, ds.patterns.Register(std::move(p)));
    ds.target_patterns.push_back(id);
  }
  return out;
}

}  // namespace pldp
