// Copyright 2026 The PLDP Authors.

#include "datasets/tdrive_loader.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "common/random.h"
#include "common/strings.h"
#include "stream/window.h"

namespace pldp {

namespace {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

}  // namespace

StatusOr<int64_t> CivilToUnixSeconds(int year, int month, int day, int hour,
                                     int minute, int second) {
  if (year < 1970 || month < 1 || month > 12 || day < 1 ||
      day > DaysInMonth(year, month) || hour < 0 || hour > 23 || minute < 0 ||
      minute > 59 || second < 0 || second > 60) {
    return Status::InvalidArgument(
        StrFormat("invalid civil time %04d-%02d-%02d %02d:%02d:%02d", year,
                  month, day, hour, minute, second));
  }
  int64_t days = 0;
  for (int y = 1970; y < year; ++y) days += IsLeapYear(y) ? 366 : 365;
  for (int m = 1; m < month; ++m) days += DaysInMonth(year, m);
  days += day - 1;
  return ((days * 24 + hour) * 60 + minute) * 60 + second;
}

StatusOr<TDriveFix> ParseTDriveLine(const std::string& line) {
  // taxi_id,YYYY-MM-DD HH:MM:SS,longitude,latitude
  std::vector<std::string> fields = Split(line, ',');
  if (fields.size() != 4) {
    return Status::InvalidArgument("expected 4 comma-separated fields, got " +
                                   std::to_string(fields.size()));
  }
  TDriveFix fix;
  PLDP_ASSIGN_OR_RETURN(fix.taxi_id, ParseInt64(fields[0]));

  const std::string& dt = std::string(Trim(fields[1]));
  // "YYYY-MM-DD HH:MM:SS" is exactly 19 chars with fixed separators.
  if (dt.size() != 19 || dt[4] != '-' || dt[7] != '-' || dt[10] != ' ' ||
      dt[13] != ':' || dt[16] != ':') {
    return Status::InvalidArgument("malformed datetime: '" + dt + "'");
  }
  PLDP_ASSIGN_OR_RETURN(int64_t year, ParseInt64(dt.substr(0, 4)));
  PLDP_ASSIGN_OR_RETURN(int64_t month, ParseInt64(dt.substr(5, 2)));
  PLDP_ASSIGN_OR_RETURN(int64_t day, ParseInt64(dt.substr(8, 2)));
  PLDP_ASSIGN_OR_RETURN(int64_t hour, ParseInt64(dt.substr(11, 2)));
  PLDP_ASSIGN_OR_RETURN(int64_t minute, ParseInt64(dt.substr(14, 2)));
  PLDP_ASSIGN_OR_RETURN(int64_t second, ParseInt64(dt.substr(17, 2)));
  PLDP_ASSIGN_OR_RETURN(
      fix.unix_seconds,
      CivilToUnixSeconds(static_cast<int>(year), static_cast<int>(month),
                         static_cast<int>(day), static_cast<int>(hour),
                         static_cast<int>(minute), static_cast<int>(second)));

  PLDP_ASSIGN_OR_RETURN(fix.longitude, ParseDouble(fields[2]));
  PLDP_ASSIGN_OR_RETURN(fix.latitude, ParseDouble(fields[3]));
  return fix;
}

StatusOr<TaxiDataset> LoadTDriveFiles(const std::vector<std::string>& files,
                                      const TDriveOptions& options) {
  if (files.empty()) {
    return Status::InvalidArgument("no T-Drive files given");
  }
  if (options.grid_width == 0 || options.grid_height == 0) {
    return Status::InvalidArgument("grid dimensions must be > 0");
  }
  const GeoBounds& b = options.bounds;
  if (!(b.min_longitude < b.max_longitude) ||
      !(b.min_latitude < b.max_latitude)) {
    return Status::InvalidArgument("degenerate bounding box");
  }
  if (options.window_seconds <= 0) {
    return Status::InvalidArgument("window_seconds must be > 0");
  }

  const size_t num_cells = options.grid_width * options.grid_height;
  TaxiDataset out;
  Dataset& ds = out.dataset;
  ds.event_types = EventTypeRegistry::MakeDense(num_cells, "cell_");

  // --- Parse trajectories ----------------------------------------------------
  std::vector<EventStream> per_taxi;
  size_t loaded = 0;
  for (const std::string& path : files) {
    if (options.max_files > 0 && loaded >= options.max_files) break;
    std::ifstream in(path);
    if (!in.is_open()) {
      return Status::IoError("cannot open T-Drive file: " + path);
    }
    std::vector<Event> events;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (Trim(line).empty()) continue;
      auto fix = ParseTDriveLine(line);
      if (!fix.ok()) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: %s", path.c_str(), line_no,
                      fix.status().message().c_str()));
      }
      // Drop fixes outside the bounding box (the raw data has GPS noise).
      if (fix->longitude < b.min_longitude ||
          fix->longitude >= b.max_longitude ||
          fix->latitude < b.min_latitude || fix->latitude >= b.max_latitude) {
        continue;
      }
      auto grid_x = static_cast<int64_t>(
          (fix->longitude - b.min_longitude) /
          (b.max_longitude - b.min_longitude) *
          static_cast<double>(options.grid_width));
      auto grid_y = static_cast<int64_t>(
          (fix->latitude - b.min_latitude) /
          (b.max_latitude - b.min_latitude) *
          static_cast<double>(options.grid_height));
      grid_x = std::min<int64_t>(grid_x,
                                 static_cast<int64_t>(options.grid_width) - 1);
      grid_y = std::min<int64_t>(
          grid_y, static_cast<int64_t>(options.grid_height) - 1);
      int64_t cell = grid_y * static_cast<int64_t>(options.grid_width) + grid_x;
      Event e(static_cast<EventTypeId>(cell), fix->unix_seconds,
              static_cast<StreamId>(loaded));
      e.SetAttribute("cell", Value(cell));
      e.SetAttribute("taxi", Value(fix->taxi_id));
      events.push_back(std::move(e));
    }
    // Raw files are usually time-ordered but contain occasional clock
    // regressions; sort to restore the invariant.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& x, const Event& y) {
                       return x.timestamp() < y.timestamp();
                     });
    EventStream stream;
    stream.Reserve(events.size());
    for (Event& e : events) stream.AppendUnchecked(std::move(e));
    per_taxi.push_back(std::move(stream));
    ++loaded;
  }
  out.merged_stream = MergeStreams(per_taxi);
  if (out.merged_stream.empty()) {
    return Status::InvalidArgument(
        "no fixes inside the bounding box — check GeoBounds");
  }

  // --- Windows -----------------------------------------------------------------
  TumblingWindower windower(options.window_seconds,
                            out.merged_stream.min_timestamp());
  PLDP_ASSIGN_OR_RETURN(ds.windows, windower.Apply(out.merged_stream));

  // --- Area labelling (same construction as the simulator) ----------------------
  Rng rng(options.area_seed);
  size_t num_private = std::max<size_t>(
      1, static_cast<size_t>(std::lround(options.private_cell_fraction *
                                         static_cast<double>(num_cells))));
  std::vector<size_t> shuffled =
      rng.SampleWithoutReplacement(num_cells, num_cells);
  size_t overlap_count = static_cast<size_t>(std::lround(
      options.private_target_overlap * static_cast<double>(num_private)));
  size_t total_target = static_cast<size_t>(std::lround(
      options.target_cell_fraction * static_cast<double>(num_cells)));

  std::unordered_set<size_t> target_set;
  for (size_t i = 0; i < overlap_count && i < num_private; ++i) {
    target_set.insert(shuffled[i]);
  }
  for (size_t i = num_private;
       i < num_cells && target_set.size() < total_target; ++i) {
    target_set.insert(shuffled[i]);
  }
  for (size_t i = 0; i < num_private; ++i) {
    out.private_cells.push_back(static_cast<int64_t>(shuffled[i]));
  }
  for (size_t c : target_set) {
    out.target_cells.push_back(static_cast<int64_t>(c));
  }
  std::sort(out.private_cells.begin(), out.private_cells.end());
  std::sort(out.target_cells.begin(), out.target_cells.end());

  for (int64_t c : out.private_cells) {
    PLDP_ASSIGN_OR_RETURN(
        Pattern p, Pattern::Create(StrFormat("priv_cell_%lld",
                                             static_cast<long long>(c)),
                                   {static_cast<EventTypeId>(c)},
                                   DetectionMode::kDisjunction));
    PLDP_ASSIGN_OR_RETURN(PatternId id, ds.patterns.Register(std::move(p)));
    ds.private_patterns.push_back(id);
  }
  for (int64_t c : out.target_cells) {
    PLDP_ASSIGN_OR_RETURN(
        Pattern p, Pattern::Create(StrFormat("tgt_cell_%lld",
                                             static_cast<long long>(c)),
                                   {static_cast<EventTypeId>(c)},
                                   DetectionMode::kDisjunction));
    PLDP_ASSIGN_OR_RETURN(PatternId id, ds.patterns.Register(std::move(p)));
    ds.target_patterns.push_back(id);
  }
  return out;
}

StatusOr<TaxiDataset> LoadTDriveDirectory(const std::string& directory,
                                          const TDriveOptions& options) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) {
    return Status::IoError("cannot list directory: " + directory + ": " +
                           ec.message());
  }
  std::vector<std::string> files;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".txt") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());  // deterministic taxi ordering
  if (files.empty()) {
    return Status::NotFound("no .txt files in " + directory);
  }
  return LoadTDriveFiles(files, options);
}

}  // namespace pldp
