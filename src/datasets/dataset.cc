// Copyright 2026 The PLDP Authors.

#include "datasets/dataset.h"

#include <cmath>

namespace pldp {

StatusOr<std::pair<std::vector<Window>, std::vector<Window>>>
Dataset::SplitHistory(double fraction) const {
  if (!(fraction > 0.0) || !(fraction < 1.0)) {
    return Status::InvalidArgument("history fraction must be in (0, 1)");
  }
  if (windows.size() < 2) {
    return Status::FailedPrecondition("need at least two windows to split");
  }
  size_t cut = static_cast<size_t>(
      std::lround(fraction * static_cast<double>(windows.size())));
  if (cut == 0) cut = 1;
  if (cut >= windows.size()) cut = windows.size() - 1;
  std::vector<Window> history(windows.begin(),
                              windows.begin() + static_cast<ptrdiff_t>(cut));
  std::vector<Window> evaluation(
      windows.begin() + static_cast<ptrdiff_t>(cut), windows.end());
  return std::make_pair(std::move(history), std::move(evaluation));
}

}  // namespace pldp
