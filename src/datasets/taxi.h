// Copyright 2026 The PLDP Authors.
//
// T-Drive taxi experiment substrate (paper §VI-A1).
//
// The paper evaluates on the T-Drive dataset: GPS records of 10357 taxis in
// Beijing, sampled every ~177 s. That dataset is not redistributable here,
// so this module provides a faithful *simulation* (substitution documented
// in DESIGN.md §4): a grid city in which taxis follow hotspot-biased random
// walks and emit one "taxi present in cell c" event per sampling tick.
//
// What the experiment actually consumes is only the per-window presence of
// cell-visit events, labelled private/target by random area selection with
// the paper's proportions:
//   - `private_cell_fraction` (20 %) of the cells form the private area,
//   - half of the private area is also target,
//   - enough non-private cells are added to reach 50 % target overall.
// The mechanisms are oblivious to trajectory realism beyond these
// statistics, so the substitution preserves the evaluated behaviour.
//
// Patterns: one single-element pattern per private cell ("taxi near
// sensitive location c") and per target cell — the paper notes the taxi
// experiment uses simple pattern types where "detecting a pattern is almost
// identical to detecting a basic event".

#ifndef PLDP_DATASETS_TAXI_H_
#define PLDP_DATASETS_TAXI_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "datasets/dataset.h"
#include "stream/event_stream.h"

namespace pldp {

/// Parameters of the taxi simulator. Defaults are laptop-scale; the bench
/// can raise `num_taxis` to the paper's 10357.
struct TaxiOptions {
  /// City grid dimensions; cells = grid_width * grid_height.
  size_t grid_width = 16;
  size_t grid_height = 16;
  /// Fleet size (paper: 10357).
  size_t num_taxis = 120;
  /// Number of GPS sampling ticks to simulate.
  size_t num_ticks = 400;
  /// Seconds between samples (paper: 177).
  int64_t sampling_interval_s = 177;
  /// Hotspots that attract traffic (stations, malls, ... — produces the
  /// uneven cell-visit distribution real fleets show).
  size_t num_hotspots = 6;
  /// Probability of stepping toward the current goal hotspot (vs. random).
  double hotspot_bias = 0.6;
  /// Probability of not moving in a tick.
  double stay_probability = 0.15;
  /// Probability of re-drawing the goal hotspot in a tick.
  double goal_change_probability = 0.02;
  /// Fraction of cells in the private area (paper: 0.2).
  double private_cell_fraction = 0.2;
  /// Fraction of all cells that are target overall (paper: 0.5).
  double target_cell_fraction = 0.5;
  /// Fraction of the private area that is also target (paper: 0.5).
  double private_target_overlap = 0.5;
  /// Evaluation window length in ticks.
  size_t window_ticks = 1;
};

/// Simulation output: the Dataset plus area labels for inspection.
struct TaxiDataset {
  Dataset dataset;
  /// Cell ids (row-major) in the private / target areas.
  std::vector<int64_t> private_cells;
  std::vector<int64_t> target_cells;
  /// The merged event stream the windows were cut from.
  EventStream merged_stream;
};

/// Runs the simulator.
StatusOr<TaxiDataset> GenerateTaxi(const TaxiOptions& options, uint64_t seed);

}  // namespace pldp

#endif  // PLDP_DATASETS_TAXI_H_
