// Copyright 2026 The PLDP Authors.

#include "datasets/synthetic.h"

#include <algorithm>

#include "common/strings.h"

namespace pldp {

StatusOr<SyntheticDataset> GenerateSynthetic(const SyntheticOptions& options,
                                             uint64_t seed) {
  if (options.num_event_types == 0 || options.num_windows == 0 ||
      options.num_patterns == 0 || options.pattern_length == 0) {
    return Status::InvalidArgument("all synthetic sizes must be > 0");
  }
  if (options.pattern_length > options.num_event_types) {
    return Status::InvalidArgument(
        "pattern length cannot exceed the number of event types");
  }
  if (options.num_private + (options.disjoint_roles ? options.num_target : 0) >
      options.num_patterns) {
    return Status::InvalidArgument(
        "private + target exceeds the number of patterns");
  }
  if (options.num_target > options.num_patterns) {
    return Status::InvalidArgument("more targets than patterns");
  }
  if (!(options.min_occurrence >= 0.0) ||
      !(options.max_occurrence <= 1.0) ||
      !(options.min_occurrence <= options.max_occurrence)) {
    return Status::InvalidArgument("bad occurrence probability range");
  }

  Rng rng(seed);
  SyntheticDataset out;
  Dataset& ds = out.dataset;

  // Step 1: event types e0..eN-1.
  ds.event_types =
      EventTypeRegistry::MakeDense(options.num_event_types, "e");

  // Step 2: natural occurrence probabilities.
  out.occurrence_probabilities.resize(options.num_event_types);
  for (double& p : out.occurrence_probabilities) {
    p = rng.UniformDouble(options.min_occurrence, options.max_occurrence);
  }

  // Steps 3-11: windows L_1..L_M; each event type occurs independently with
  // its natural probability. Window m covers timestamp m.
  ds.windows.reserve(options.num_windows);
  for (size_t m = 0; m < options.num_windows; ++m) {
    Window w;
    w.start = static_cast<Timestamp>(m);
    w.end = static_cast<Timestamp>(m) + 1;
    for (size_t t = 0; t < options.num_event_types; ++t) {
      if (rng.Bernoulli(out.occurrence_probabilities[t])) {
        w.events.emplace_back(static_cast<EventTypeId>(t), w.start);
      }
    }
    ds.windows.push_back(std::move(w));
  }

  // Step 14: assign `pattern_length` random (distinct) events to each
  // pattern; detection is conjunction within a window.
  for (size_t k = 0; k < options.num_patterns; ++k) {
    std::vector<size_t> picks = rng.SampleWithoutReplacement(
        options.num_event_types, options.pattern_length);
    std::vector<EventTypeId> elems;
    elems.reserve(picks.size());
    for (size_t p : picks) elems.push_back(static_cast<EventTypeId>(p));
    PLDP_ASSIGN_OR_RETURN(
        Pattern pattern,
        Pattern::Create(StrFormat("P%zu", k), std::move(elems),
                        DetectionMode::kConjunction));
    PLDP_ASSIGN_OR_RETURN(PatternId id, ds.patterns.Register(std::move(pattern)));
    (void)id;
  }

  // Step 13: random private / target roles.
  std::vector<size_t> order = rng.SampleWithoutReplacement(
      options.num_patterns, options.num_patterns);
  for (size_t i = 0; i < options.num_private; ++i) {
    ds.private_patterns.push_back(static_cast<PatternId>(order[i]));
  }
  size_t target_offset = options.disjoint_roles ? options.num_private : 0;
  if (!options.disjoint_roles) {
    // Redraw so targets are independent of the private selection.
    order = rng.SampleWithoutReplacement(options.num_patterns,
                                         options.num_patterns);
  }
  for (size_t i = 0; i < options.num_target; ++i) {
    ds.target_patterns.push_back(
        static_cast<PatternId>(order[target_offset + i]));
  }
  std::sort(ds.private_patterns.begin(), ds.private_patterns.end());
  std::sort(ds.target_patterns.begin(), ds.target_patterns.end());
  return out;
}

}  // namespace pldp
