// Copyright 2026 The PLDP Authors.
//
// Loader for the real T-Drive trajectory files (Yuan et al., KDD'11) —
// the dataset the paper evaluates on. The files are not redistributable
// with this repository, but users who obtain them from Microsoft Research
// can reproduce the Taxi experiment on the genuine data instead of the
// simulator.
//
// T-Drive format: one text file per taxi, lines of
//   taxi_id,YYYY-MM-DD HH:MM:SS,longitude,latitude
//
// The loader grid-maps the GPS fixes onto `grid_width` × `grid_height`
// cells over the data's bounding box (configurable to the paper's Beijing
// extent), emits one cell-visit event per fix, merges all taxis into one
// temporally ordered stream, and labels private/target cell areas with the
// same proportions as the simulator (paper §VI-A1: 20 % private, 50 %
// target, half the private area also target).

#ifndef PLDP_DATASETS_TDRIVE_LOADER_H_
#define PLDP_DATASETS_TDRIVE_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datasets/taxi.h"

namespace pldp {

/// Geographic bounding box; fixes outside it are dropped.
struct GeoBounds {
  double min_longitude = 116.0;  // Beijing extent (paper's dataset)
  double max_longitude = 116.8;
  double min_latitude = 39.6;
  double max_latitude = 40.2;
};

/// Loader configuration.
struct TDriveOptions {
  GeoBounds bounds;
  size_t grid_width = 32;
  size_t grid_height = 32;
  /// Evaluation window length in seconds (paper cadence: 177 s).
  int64_t window_seconds = 177;
  /// Area proportions (paper defaults).
  double private_cell_fraction = 0.2;
  double target_cell_fraction = 0.5;
  double private_target_overlap = 0.5;
  /// Seed for the random area labelling.
  uint64_t area_seed = 2023;
  /// Maximum files to load (0 = no limit) — for quick subsampled runs.
  size_t max_files = 0;
};

/// Parses one T-Drive line into (taxi id, unix seconds, lon, lat).
/// Exposed for tests.
struct TDriveFix {
  int64_t taxi_id = 0;
  int64_t unix_seconds = 0;
  double longitude = 0.0;
  double latitude = 0.0;
};
StatusOr<TDriveFix> ParseTDriveLine(const std::string& line);

/// Converts a civil datetime (UTC, no leap seconds) to unix seconds.
/// Exposed for tests.
StatusOr<int64_t> CivilToUnixSeconds(int year, int month, int day, int hour,
                                     int minute, int second);

/// Loads every `*.txt` file in `directory` (one taxi per file, T-Drive
/// layout) and assembles the same `TaxiDataset` shape the simulator
/// produces, so the fig4_taxi pipeline runs unchanged on real data.
StatusOr<TaxiDataset> LoadTDriveDirectory(const std::string& directory,
                                          const TDriveOptions& options);

/// Loads from explicit file paths (tests use this with fixtures).
StatusOr<TaxiDataset> LoadTDriveFiles(const std::vector<std::string>& files,
                                      const TDriveOptions& options);

}  // namespace pldp

#endif  // PLDP_DATASETS_TDRIVE_LOADER_H_
