// Copyright 2026 The PLDP Authors.
//
// Streaming per-subject protected-view publication (the paper's service
// phase, Fig. 2: one protected view series per data subject's stream).
//
// `SubjectViewPublisher` consumes a temporally ordered event sequence that
// may interleave many data subjects, maintains one tumbling-window state
// machine per subject, and — every time a subject's window closes — lets a
// per-subject `PrivacyMechanism` instance publish the protected view and
// answers every registered binary query from that view. It is the
// incremental equivalent of `PrivateCepEngine::ProcessStream` run on each
// subject's substream with `TumblingWindower`, and a fixed-seed test pins
// that equivalence exactly.
//
// Determinism is shard-topology-independent: each subject's Rng derives
// from (base seed, subject id) via `SubjectSeed`, and each subject gets a
// fresh mechanism instance from the factory, so the published answers do
// not depend on which worker absorbed the subject or on how subjects
// interleave. This is what lets ParallelPrivateEngine produce identical
// results at any shard count.

#ifndef PLDP_PPM_SUBJECT_PUBLISHER_H_
#define PLDP_PPM_SUBJECT_PUBLISHER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cep/query.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "event/event.h"
#include "obs/instruments.h"
#include "ppm/mechanism.h"
#include "stream/window.h"

namespace pldp {

/// Deterministic per-subject seed derivation: a pure function of the base
/// seed and the subject id, independent of shard placement and arrival
/// interleaving. Exposed so sequential reference runs can reproduce the
/// sharded results bit-for-bit.
inline uint64_t SubjectSeed(uint64_t base_seed, StreamId subject) {
  return SplitMix64(base_seed ^ (0xa11ce500ULL + subject)).Next();
}

/// Protected answers for one data subject (mirrors PrivateQueryResults,
/// which lives in core/ and cannot be named from ppm/).
struct SubjectResults {
  /// answers[q] aligns with the registered query ids.
  std::vector<AnswerSeries> answers;
  /// Windows published for this subject.
  size_t window_count = 0;
};

/// Configuration of a SubjectViewPublisher.
struct SubjectPublisherOptions {
  /// The setup-phase context handed to every per-subject mechanism (as
  /// built by PrivateCepEngine::BuildContext). Borrowed registries must
  /// outlive the publisher.
  MechanismContext context;
  /// Creates one fresh mechanism per subject.
  MechanismFactory factory;
  /// Queries answered per window, indexed by BinaryQuery::id.
  std::vector<BinaryQuery> queries;
  /// Tumbling window size (> 0) and alignment origin — must match the
  /// TumblingWindower of the sequential path being reproduced.
  Timestamp window_size = 0;
  Timestamp window_origin = 0;
  /// Base seed; per-subject Rngs derive via SubjectSeed.
  uint64_t seed = 0;
};

/// Observes every protected view the moment it is published: the subject,
/// the window it covers, and the view itself. Runs synchronously on the
/// publishing thread, in publication order — deterministic given the input
/// stream, because windows close on subject-local triggers and Finalize
/// publishes in ascending subject order. This is how the exchange pipeline
/// taps protected output for cross-subject correlation without raw events
/// ever leaving the shard.
using ViewCallback = std::function<void(
    StreamId subject, const Window& window, const PublishedView& view)>;

/// Per-subject windowing + protected-view publication state machine.
/// Single-threaded: one publisher is owned by one shard worker (or used
/// directly for sequential runs).
class SubjectViewPublisher {
 public:
  explicit SubjectViewPublisher(SubjectPublisherOptions options);

  /// Registers the protected-view observer (see ViewCallback). Call before
  /// the first Absorb.
  void SetViewCallback(ViewCallback callback) {
    view_callback_ = std::move(callback);
  }

  /// Binds telemetry instruments (windows counter, live-subjects gauge).
  /// Call before the first Absorb; updates run on the owning worker.
  void SetInstruments(const obs::PublisherInstruments& instruments) {
    obs_ = instruments;
  }

  /// Absorbs one event. Events of one subject must arrive in non-decreasing
  /// timestamp order (the stream contract). Errors (mechanism creation or
  /// publication failures) latch: the first one is kept and returned by
  /// Finalize, and further events are ignored.
  void Absorb(const Event& event);

  /// Publishes every subject's open window (the window containing its last
  /// event) and seals the publisher. Idempotent. Returns the first error
  /// encountered by Absorb/Finalize, if any.
  Status Finalize();

  bool finalized() const {
    owner_role_.Assert();
    return finalized_;
  }

  /// Subjects seen so far, ascending.
  std::vector<StreamId> SubjectIds() const;

  /// Results of one subject; nullptr when the subject was never seen.
  /// Stable only after Finalize().
  const SubjectResults* ResultsFor(StreamId subject) const;

  size_t subject_count() const {
    owner_role_.Assert();
    return subjects_.size();
  }

  /// Windows published across all subjects.
  size_t total_windows() const {
    owner_role_.Assert();
    return total_windows_;
  }

 private:
  struct SubjectState {
    SubjectState(StreamId s, Rng r) : subject(s), rng(r) {}
    StreamId subject = kDefaultStream;
    std::unique_ptr<PrivacyMechanism> mechanism;
    Rng rng;
    /// The open window: [current.start, current.end) accumulating events.
    Window current;
    SubjectResults results;
  };

  StatusOr<SubjectState*> GetOrCreate(const Event& event)
      PLDP_REQUIRES(owner_role_);

  /// Publishes the open window and advances to the next one.
  Status PublishCurrent(SubjectState* state) PLDP_REQUIRES(owner_role_);

  /// Single-owner contract (see class comment): one shard worker drives
  /// Absorb/Finalize; result reads happen on the orchestrator only after
  /// the drain/stop barrier transferred ownership. Asserted, not acquired —
  /// the barrier itself (worker join) is the synchronization.
  mutable ThreadRole owner_role_;

  SubjectPublisherOptions options_;
  ViewCallback view_callback_;
  obs::PublisherInstruments obs_;
  /// targets_[i] is queries[i]'s target pattern, resolved once (the query
  /// set is frozen at construction; this runs on the worker's hot path).
  std::vector<const Pattern*> targets_;
  std::unordered_map<StreamId, SubjectState> subjects_
      PLDP_GUARDED_BY(owner_role_);
  size_t total_windows_ PLDP_GUARDED_BY(owner_role_) = 0;
  Status error_ PLDP_GUARDED_BY(owner_role_) = Status::OK();
  bool finalized_ PLDP_GUARDED_BY(owner_role_) = false;
};

}  // namespace pldp

#endif  // PLDP_PPM_SUBJECT_PUBLISHER_H_
