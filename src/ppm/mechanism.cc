// Copyright 2026 The PLDP Authors.

#include "ppm/mechanism.h"

namespace pldp {

bool PatternDetectedInView(const PublishedView& view, const Pattern& pattern) {
  switch (pattern.mode()) {
    case DetectionMode::kSequence:
    case DetectionMode::kConjunction: {
      for (EventTypeId t : pattern.elements()) {
        if (t >= view.presence.size() || !view.presence[t]) return false;
      }
      return true;
    }
    case DetectionMode::kDisjunction: {
      for (EventTypeId t : pattern.elements()) {
        if (t < view.presence.size() && view.presence[t]) return true;
      }
      return false;
    }
  }
  return false;
}

PublishedView TrueView(const Window& window, size_t type_count) {
  PublishedView view;
  view.presence.assign(type_count, false);
  for (const Event& e : window.events) {
    if (e.type() < type_count) view.presence[e.type()] = true;
  }
  return view;
}

Status PassthroughMechanism::Initialize(const MechanismContext& context) {
  if (context.event_types == nullptr) {
    return Status::InvalidArgument("context.event_types must be set");
  }
  type_count_ = context.event_types->size();
  return Status::OK();
}

StatusOr<PublishedView> PassthroughMechanism::PublishWindow(
    const Window& window, Rng* rng) {
  (void)rng;
  if (type_count_ == 0) {
    return Status::FailedPrecondition("Initialize() not called");
  }
  return TrueView(window, type_count_);
}

}  // namespace pldp
