// Copyright 2026 The PLDP Authors.

#include "ppm/w_event.h"

#include <algorithm>
#include <cmath>

#include "dp/budget_conversion.h"

namespace pldp {

namespace {
/// Longest private pattern = the span used in the budget conversion.
size_t MaxPrivateSpan(const MechanismContext& context) {
  size_t span = 1;
  for (PatternId id : context.private_patterns) {
    span = std::max(span, context.patterns->Get(id).length());
  }
  return span;
}
}  // namespace

Status WEventPpm::Initialize(const MechanismContext& context) {
  if (context.event_types == nullptr || context.patterns == nullptr) {
    return Status::InvalidArgument(
        "context.event_types and context.patterns must be set");
  }
  if (!(context.epsilon > 0.0)) {
    return Status::InvalidArgument("context.epsilon must be > 0");
  }
  if (options_.w == 0) return Status::InvalidArgument("w must be > 0");

  context_ = context;
  type_count_ = context.event_types->size();

  size_t span = MaxPrivateSpan(context);
  PLDP_ASSIGN_OR_RETURN(
      native_epsilon_,
      WEventBudgetForPatternLevel(context.epsilon, options_.w, span));
  // Kellaris split: half for the dissimilarity tests, half for publication.
  budget_unit_ = native_epsilon_ / (2.0 * static_cast<double>(options_.w));
  dissim_epsilon_per_ts_ = budget_unit_;

  Reset();
  return Status::OK();
}

void WEventPpm::Reset() {
  last_published_.assign(type_count_, 0.0);
  has_published_ = false;
  timestamp_ = 0;
  publication_count_ = 0;
}

StatusOr<PublishedView> WEventPpm::PublishWindow(const Window& window,
                                                 Rng* rng) {
  if (type_count_ == 0) {
    return Status::FailedPrecondition("Initialize() not called");
  }
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");

  // True per-type counts of this window.
  std::vector<double> counts(type_count_, 0.0);
  for (const Event& e : window.events) {
    if (e.type() < type_count_) counts[e.type()] += 1.0;
  }

  const double pub_budget = PublicationBudget();
  bool publish = false;
  double spent = 0.0;

  if (!has_published_) {
    // The first timestamp always publishes (there is nothing to reuse).
    publish = pub_budget > 0.0;
  } else if (pub_budget > 0.0) {
    // Noisy dissimilarity test (Kellaris): dis = mean |c_t − l|, sensitivity
    // 1/d (one event moves one count by 1). Publish when the noisy
    // dissimilarity exceeds the error a fresh publication would carry
    // (the Laplace scale of the publication noise).
    double dis = 0.0;
    for (size_t t = 0; t < type_count_; ++t) {
      dis += std::abs(counts[t] - last_published_[t]);
    }
    dis /= static_cast<double>(type_count_);
    PLDP_ASSIGN_OR_RETURN(
        auto dis_mech,
        LaplaceMechanism::Create(1.0 / static_cast<double>(type_count_),
                                 dissim_epsilon_per_ts_));
    double noisy_dis = dis_mech.AddNoise(dis, rng);
    double publication_error = 1.0 / pub_budget;  // Laplace scale at Δ=1
    publish = noisy_dis > publication_error;
  }

  if (publish) {
    PLDP_ASSIGN_OR_RETURN(auto pub_mech, LaplaceMechanism::Create(
                                             /*sensitivity=*/1.0, pub_budget));
    for (size_t t = 0; t < type_count_; ++t) {
      last_published_[t] = pub_mech.AddNoise(counts[t], rng);
    }
    has_published_ = true;
    spent = pub_budget;
    ++publication_count_;
  }
  OnDecision(publish, spent);
  ++timestamp_;

  PublishedView view;
  view.presence.assign(type_count_, false);
  for (size_t t = 0; t < type_count_; ++t) {
    view.presence[t] = last_published_[t] >= options_.presence_threshold;
  }
  return view;
}

void BudgetAbsorptionPpm::Reset() {
  WEventPpm::Reset();
  banked_ = 0.0;
  nullified_remaining_ = 0;
}

double BudgetAbsorptionPpm::PublicationBudget() {
  if (nullified_remaining_ > 0) return 0.0;  // paying off an absorption
  // This timestamp's unit plus everything banked by skipped timestamps,
  // capped at the full publication half-budget (w units).
  double cap = budget_unit() * static_cast<double>(options().w);
  return std::min(banked_ + budget_unit(), cap);
}

void BudgetAbsorptionPpm::OnDecision(bool published, double spent) {
  if (nullified_remaining_ > 0) {
    --nullified_remaining_;
    return;
  }
  if (published) {
    // A publication that spent k budget units nullifies the next k−1
    // timestamps (their budget was consumed ahead of time).
    double units = spent / budget_unit();
    size_t k = static_cast<size_t>(std::lround(units));
    nullified_remaining_ = k > 1 ? k - 1 : 0;
    banked_ = 0.0;
  } else {
    banked_ += budget_unit();
  }
}

}  // namespace pldp
