// Copyright 2026 The PLDP Authors.
//
// w-event DP baselines: Budget Division (BD) and Budget Absorption (BA),
// after Kellaris et al., "Differentially private event sequences over
// infinite streams", VLDB 2014.
//
// Both publish a noisy per-type count vector at every evaluation window
// (timestamp), guaranteeing ε_w-DP for any event within any sliding window
// of w timestamps. Half the budget pays for a noisy dissimilarity test
// against the last release (skip-or-publish), half for the publications:
//
//   BD: each timestamp may spend ε_w / (2w) on publication.
//   BA: a publication absorbs the budgets of the timestamps skipped since
//       the last release (less noise), and nullifies as many following
//       timestamps as it absorbed.
//
// Presence per type is thresholded from the published counts at 0.5; the
// binary queries are then answered from presence (mechanism.h reduction).
//
// Budget conversion (paper §VI-A2): `MechanismContext.epsilon` is the
// *pattern-level* ε; the constructor converts it to the native w-event
// budget via WEventBudgetForPatternLevel with span = the longest private
// pattern, so the budget aggregated over the pattern's timestamps equals
// the pattern-level ε the pattern-level PPMs get.

#ifndef PLDP_PPM_W_EVENT_H_
#define PLDP_PPM_W_EVENT_H_

#include <string>
#include <vector>

#include "dp/laplace.h"
#include "ppm/mechanism.h"

namespace pldp {

/// Options shared by BD and BA.
struct WEventOptions {
  /// The w of w-event privacy, in evaluation windows (timestamps).
  size_t w = 10;
  /// Presence threshold applied to published noisy counts.
  double presence_threshold = 0.5;
};

/// Common machinery of the two schemes.
class WEventPpm : public PrivacyMechanism {
 public:
  explicit WEventPpm(WEventOptions options) : options_(options) {}

  Status Initialize(const MechanismContext& context) override;
  StatusOr<PublishedView> PublishWindow(const Window& window,
                                        Rng* rng) override;
  void Reset() override;

  /// Native w-event budget after conversion from pattern-level ε.
  double native_epsilon() const { return native_epsilon_; }
  /// Number of actual (non-approximated) publications so far.
  size_t publication_count() const { return publication_count_; }

 protected:
  /// Scheme hook: the publication budget available at this timestamp
  /// (0 = forced skip / nullified). Called once per window, in order.
  virtual double PublicationBudget() = 0;
  /// Scheme hook: notification that the timestamp published (spending
  /// `spent`) or skipped.
  virtual void OnDecision(bool published, double spent) = 0;

  const WEventOptions& options() const { return options_; }
  /// Per-timestamp budget unit ε_w / (2w).
  double budget_unit() const { return budget_unit_; }

 private:
  WEventOptions options_;
  MechanismContext context_;
  size_t type_count_ = 0;
  double native_epsilon_ = 0.0;
  double budget_unit_ = 0.0;
  double dissim_epsilon_per_ts_ = 0.0;

  std::vector<double> last_published_;
  bool has_published_ = false;
  size_t timestamp_ = 0;
  size_t publication_count_ = 0;
};

/// Budget Division: fixed ε_w/(2w) per publication.
class BudgetDivisionPpm final : public WEventPpm {
 public:
  explicit BudgetDivisionPpm(WEventOptions options = {})
      : WEventPpm(options) {}
  std::string name() const override { return "bd"; }

 protected:
  double PublicationBudget() override { return budget_unit(); }
  void OnDecision(bool, double) override {}
};

/// Budget Absorption: skipped budgets accumulate; publications that spend
/// k units nullify the next k−1 timestamps.
class BudgetAbsorptionPpm final : public WEventPpm {
 public:
  explicit BudgetAbsorptionPpm(WEventOptions options = {})
      : WEventPpm(options) {}
  std::string name() const override { return "ba"; }
  void Reset() override;

 protected:
  double PublicationBudget() override;
  void OnDecision(bool published, double spent) override;

 private:
  double banked_ = 0.0;
  size_t nullified_remaining_ = 0;
};

}  // namespace pldp

#endif  // PLDP_PPM_W_EVENT_H_
