// Copyright 2026 The PLDP Authors.
//
// Shared machinery of the two pattern-level PPMs (paper §V).
//
// Both mechanisms apply per-element randomized response to the existence
// indicators of private-pattern member types and leave every other type
// untouched; they differ only in how the pattern budget ε is split across
// elements. `PatternLevelPpm` implements the publishing path given
// per-pattern `BudgetAllocation`s supplied by the subclass.
//
// Overlapping private patterns (shared element types) receive independent
// mechanism applications, in registration order — the paper notes this only
// adds noise and never weakens the guarantee.

#ifndef PLDP_PPM_PATTERN_LEVEL_H_
#define PLDP_PPM_PATTERN_LEVEL_H_

#include <vector>

#include "dp/budget.h"
#include "dp/randomized_response.h"
#include "ppm/mechanism.h"

namespace pldp {

/// Base class: randomized response on private-pattern indicators.
class PatternLevelPpm : public PrivacyMechanism {
 public:
  Status Initialize(const MechanismContext& context) override;

  StatusOr<PublishedView> PublishWindow(const Window& window,
                                        Rng* rng) override;

  void Reset() override {}  // stateless across windows

  /// The allocation in effect for the i-th private pattern (after
  /// Initialize). Exposed for tests and the budget-distribution bench.
  const BudgetAllocation& allocation(size_t i) const {
    return allocations_[i];
  }
  size_t private_pattern_count() const { return allocations_.size(); }

  /// Per-pattern total ε actually configured (Theorem 1 sum).
  double PatternEpsilon(size_t i) const { return allocations_[i].Total(); }

 protected:
  /// Subclass hook: produce the budget split for one private pattern.
  /// `pattern` is the pattern to protect; `context` carries history etc.
  virtual StatusOr<BudgetAllocation> MakeAllocation(
      const Pattern& pattern, const MechanismContext& context) = 0;

  const MechanismContext* context() const { return &context_; }

 private:
  MechanismContext context_;
  size_t type_count_ = 0;
  std::vector<PatternId> private_ids_;
  std::vector<BudgetAllocation> allocations_;
  std::vector<PatternRandomizedResponse> mechanisms_;
  bool initialized_ = false;
};

/// Uniform pattern-level PPM (paper §V-A): ε_i = ε / m.
class UniformPatternPpm final : public PatternLevelPpm {
 public:
  std::string name() const override { return "uniform"; }

 protected:
  StatusOr<BudgetAllocation> MakeAllocation(
      const Pattern& pattern, const MechanismContext& context) override;
};

}  // namespace pldp

#endif  // PLDP_PPM_PATTERN_LEVEL_H_
