// Copyright 2026 The PLDP Authors.

#include "ppm/numeric.h"

#include "common/math_utils.h"
#include "dp/laplace.h"

namespace pldp {

StatusOr<size_t> CountViaPublishedViews(PrivacyMechanism* mechanism,
                                        const std::vector<Window>& windows,
                                        const Pattern& target, Rng* rng) {
  if (mechanism == nullptr) {
    return Status::InvalidArgument("mechanism must not be null");
  }
  size_t count = 0;
  for (const Window& w : windows) {
    PLDP_ASSIGN_OR_RETURN(PublishedView view,
                          mechanism->PublishWindow(w, rng));
    if (PatternDetectedInView(view, target)) ++count;
  }
  return count;
}

StatusOr<double> DirectNoisyCount(const std::vector<Window>& windows,
                                  const Pattern& target, double epsilon,
                                  double sensitivity, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  PLDP_ASSIGN_OR_RETURN(auto mech,
                        LaplaceMechanism::Create(sensitivity, epsilon));
  double truth = 0.0;
  for (const Window& w : windows) {
    PLDP_ASSIGN_OR_RETURN(bool hit, PatternOccursInWindow(w, target));
    if (hit) truth += 1.0;
  }
  double noisy = mech.AddNoise(truth, rng);
  return Clamp(noisy, 0.0, static_cast<double>(windows.size()));
}

}  // namespace pldp
