// Copyright 2026 The PLDP Authors.

#include "ppm/pattern_level.h"

namespace pldp {

Status PatternLevelPpm::Initialize(const MechanismContext& context) {
  if (context.event_types == nullptr || context.patterns == nullptr) {
    return Status::InvalidArgument(
        "context.event_types and context.patterns must be set");
  }
  if (!(context.epsilon > 0.0)) {
    return Status::InvalidArgument("context.epsilon must be > 0");
  }
  if (context.private_patterns.empty()) {
    return Status::InvalidArgument(
        "pattern-level PPM needs at least one private pattern");
  }
  for (PatternId id : context.private_patterns) {
    if (!context.patterns->Contains(id)) {
      return Status::NotFound("private pattern id " + std::to_string(id) +
                              " not registered");
    }
  }

  context_ = context;
  type_count_ = context.event_types->size();
  private_ids_ = context.private_patterns;
  allocations_.clear();
  mechanisms_.clear();

  for (PatternId id : private_ids_) {
    const Pattern& p = context.patterns->Get(id);
    PLDP_ASSIGN_OR_RETURN(BudgetAllocation alloc, MakeAllocation(p, context));
    if (alloc.size() != p.length()) {
      return Status::Internal("allocation size mismatch for pattern '" +
                              p.name() + "'");
    }
    PLDP_ASSIGN_OR_RETURN(auto mech,
                          PatternRandomizedResponse::FromAllocation(alloc));
    allocations_.push_back(std::move(alloc));
    mechanisms_.push_back(std::move(mech));
  }
  initialized_ = true;
  return Status::OK();
}

StatusOr<PublishedView> PatternLevelPpm::PublishWindow(const Window& window,
                                                       Rng* rng) {
  if (!initialized_) {
    return Status::FailedPrecondition("Initialize() not called");
  }
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");

  PublishedView view = TrueView(window, type_count_);

  // Independent application per private pattern, in registration order.
  for (size_t k = 0; k < private_ids_.size(); ++k) {
    const Pattern& p = context_.patterns->Get(private_ids_[k]);
    const auto& elems = p.elements();

    // Collect the current indicator of each element...
    std::vector<bool> indicators(elems.size());
    for (size_t i = 0; i < elems.size(); ++i) {
      indicators[i] = view.presence[elems[i]];
    }
    // ...perturb them jointly (one RR per element)...
    PLDP_ASSIGN_OR_RETURN(std::vector<bool> noisy,
                          mechanisms_[k].Perturb(indicators, rng));
    // ...and write back. When a type repeats within the pattern, the later
    // element's output wins (each element is an independent mechanism; the
    // published bit composes their outputs).
    for (size_t i = 0; i < elems.size(); ++i) {
      view.presence[elems[i]] = noisy[i];
    }
  }
  return view;
}

StatusOr<BudgetAllocation> UniformPatternPpm::MakeAllocation(
    const Pattern& pattern, const MechanismContext& context) {
  return BudgetAllocation::Uniform(context.epsilon, pattern.length());
}

}  // namespace pldp
