// Copyright 2026 The PLDP Authors.
//
// Adaptive pattern-level PPM (paper §V-B, Algorithm 1).
//
// The per-element budgets ε_i of one private pattern are tuned on
// historical windows with a bidirectional stepwise search: starting from
// the uniform split, each round tries shifting a step δε onto every element
// in turn (winner += δε, all -= δε/m), scores the resulting data quality
// Q = α·Prec + (1−α)·Rec on the history by Monte-Carlo simulation of the
// mechanism, and keeps the best shift while it does not decrease Q.
//
// Candidate allocations are scored with common random numbers (the same
// seed per round) so the comparison between candidates is low-variance.

#ifndef PLDP_PPM_ADAPTIVE_H_
#define PLDP_PPM_ADAPTIVE_H_

#include <vector>

#include "ppm/pattern_level.h"

namespace pldp {

/// Tuning knobs of Algorithm 1.
struct AdaptivePpmOptions {
  /// Step size δε. <= 0 selects the paper's suggestion δε = m·ε/100.
  double step_epsilon = 0.0;
  /// Monte-Carlo trials per quality estimate.
  size_t trials = 64;
  /// Hard cap on stepwise rounds (the paper's loop guards only on Q and the
  /// budget box; a cap keeps runtime bounded on plateaus).
  size_t max_rounds = 50;
  /// Minimum Q gain to accept a shift. The paper accepts on >=; a tiny
  /// positive threshold avoids cycling on exact plateaus.
  double min_improvement = 1e-9;
  /// Seed for the Monte-Carlo evaluation.
  uint64_t seed = 0x9d1f2c3b4a5e6f70ULL;
};

/// Estimates Q for one private pattern under a candidate allocation by
/// simulating the randomized response over the historical windows.
///
/// For each history window and each target pattern: truth = detection in
/// the unperturbed view; prediction = detection after perturbing this
/// private pattern's element indicators with `allocation`. Confusion counts
/// accumulate over windows × targets × trials.
StatusOr<double> EvaluateAllocationQuality(
    const BudgetAllocation& allocation, const Pattern& private_pattern,
    const MechanismContext& context, size_t trials, uint64_t seed);

/// Runs Algorithm 1 for one private pattern; returns the tuned allocation.
StatusOr<BudgetAllocation> BidirectionalStepwiseSearch(
    const Pattern& private_pattern, const MechanismContext& context,
    const AdaptivePpmOptions& options);

/// The adaptive PPM: per-pattern allocations from Algorithm 1. Falls back
/// to the uniform split when the context has no historical windows.
class AdaptivePatternPpm final : public PatternLevelPpm {
 public:
  AdaptivePatternPpm() = default;
  explicit AdaptivePatternPpm(AdaptivePpmOptions options)
      : options_(options) {}

  std::string name() const override { return "adaptive"; }

  const AdaptivePpmOptions& options() const { return options_; }

 protected:
  StatusOr<BudgetAllocation> MakeAllocation(
      const Pattern& pattern, const MechanismContext& context) override;

 private:
  AdaptivePpmOptions options_;
};

}  // namespace pldp

#endif  // PLDP_PPM_ADAPTIVE_H_
