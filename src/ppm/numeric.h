// Copyright 2026 The PLDP Authors.
//
// Numeric-query extension (paper §V lists numerical/categorical answers as
// future work; this module implements the natural first step).
//
// Two ways to answer "in how many of these windows did target pattern P
// occur?" under pattern-level DP:
//
//  1. Post-processing (`CountViaPublishedViews`): count positives over the
//     per-window views a pattern-level PPM already publishes. DP is closed
//     under post-processing, so the count inherits the mechanism's
//     pattern-level ε at no extra budget — but the per-window flips
//     accumulate into count error.
//
//  2. Direct noisy count (`DirectNoisyCount`): compute the true aggregate
//     and add Laplace(Δ/ε) once, where Δ is the number of windows a single
//     in-pattern neighbor change can affect (1 for tumbling windows,
//     ceil(size/slide) for sliding). One noise draw for the whole range —
//     usually far more accurate, but it answers only the aggregate, not
//     the per-window series.
//
// The trade-off between them is quantified in tests/ppm_numeric_test.cc.

#ifndef PLDP_PPM_NUMERIC_H_
#define PLDP_PPM_NUMERIC_H_

#include <vector>

#include "ppm/mechanism.h"

namespace pldp {

/// Counts windows whose *published* view contains the target pattern.
/// `mechanism` must be initialized; windows are processed in order (the
/// mechanism may be stateful). Pure post-processing of DP outputs.
StatusOr<size_t> CountViaPublishedViews(PrivacyMechanism* mechanism,
                                        const std::vector<Window>& windows,
                                        const Pattern& target, Rng* rng);

/// True count of windows containing the target pattern, plus one
/// Laplace(sensitivity/epsilon) draw, clamped to [0, windows.size()].
/// `sensitivity` = max windows a single event replacement can affect.
StatusOr<double> DirectNoisyCount(const std::vector<Window>& windows,
                                  const Pattern& target, double epsilon,
                                  double sensitivity, Rng* rng);

}  // namespace pldp

#endif  // PLDP_PPM_NUMERIC_H_
