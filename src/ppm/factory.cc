// Copyright 2026 The PLDP Authors.

#include "ppm/factory.h"

namespace pldp {

StatusOr<std::unique_ptr<PrivacyMechanism>> MakeMechanism(
    const std::string& name, const MechanismFactoryOptions& options) {
  if (name == "passthrough") {
    return std::unique_ptr<PrivacyMechanism>(new PassthroughMechanism());
  }
  if (name == "uniform") {
    return std::unique_ptr<PrivacyMechanism>(new UniformPatternPpm());
  }
  if (name == "adaptive") {
    return std::unique_ptr<PrivacyMechanism>(
        new AdaptivePatternPpm(options.adaptive));
  }
  if (name == "bd") {
    return std::unique_ptr<PrivacyMechanism>(
        new BudgetDivisionPpm(options.w_event));
  }
  if (name == "ba") {
    return std::unique_ptr<PrivacyMechanism>(
        new BudgetAbsorptionPpm(options.w_event));
  }
  if (name == "landmark") {
    return std::unique_ptr<PrivacyMechanism>(new LandmarkPpm(options.landmark));
  }
  return Status::NotFound("unknown mechanism: " + name);
}

std::vector<std::string> AllMechanismNames() {
  return {"uniform", "adaptive", "bd", "ba", "landmark"};
}

MechanismFactory NamedMechanismFactory(const std::string& name,
                                       MechanismFactoryOptions options) {
  return [name, options] { return MakeMechanism(name, options); };
}

}  // namespace pldp
