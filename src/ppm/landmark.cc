// Copyright 2026 The PLDP Authors.

#include "ppm/landmark.h"

#include <algorithm>
#include <cmath>

#include "dp/budget_conversion.h"
#include "dp/laplace.h"

namespace pldp {

Status LandmarkPpm::Initialize(const MechanismContext& context) {
  if (context.event_types == nullptr || context.patterns == nullptr) {
    return Status::InvalidArgument(
        "context.event_types and context.patterns must be set");
  }
  if (!(context.epsilon > 0.0)) {
    return Status::InvalidArgument("context.epsilon must be > 0");
  }
  if (!(options_.landmark_fraction > 0.0) ||
      options_.landmark_fraction >= 1.0) {
    return Status::InvalidArgument("landmark fraction must be in (0, 1)");
  }

  context_ = context;
  type_count_ = context.event_types->size();

  private_types_.clear();
  size_t span = 1;
  for (PatternId id : context.private_patterns) {
    if (!context.patterns->Contains(id)) {
      return Status::NotFound("private pattern id " + std::to_string(id) +
                              " not registered");
    }
    const Pattern& p = context.patterns->Get(id);
    span = std::max(span, p.length());
    for (EventTypeId t : p.elements()) private_types_.insert(t);
  }

  // Horizon / landmark-count estimation from history when not pinned.
  size_t horizon = options_.horizon;
  size_t landmarks = options_.landmark_count;
  if ((horizon == 0 || landmarks == 0) && context.history != nullptr &&
      !context.history->empty()) {
    size_t h = context.history->size();
    size_t l = 0;
    for (const Window& w : *context.history) {
      if (IsLandmark(w)) ++l;
    }
    if (horizon == 0) horizon = h;
    if (landmarks == 0) landmarks = std::max<size_t>(l, 1);
  }
  if (horizon == 0 || landmarks == 0) {
    return Status::FailedPrecondition(
        "landmark PPM needs horizon/landmark hints or non-empty history");
  }
  if (landmarks > horizon) landmarks = horizon;

  PLDP_ASSIGN_OR_RETURN(
      native_epsilon_,
      LandmarkBudgetForPatternLevel(context.epsilon,
                                    options_.landmark_fraction, landmarks,
                                    span));
  // Landmark timestamps share the landmark fraction; regular timestamps
  // share the rest. Half of each per-timestamp budget pays the
  // dissimilarity test, half the publication (as in the Adaptive scheme).
  eps_landmark_ts_ = options_.landmark_fraction * native_epsilon_ /
                     static_cast<double>(landmarks);
  size_t regular = horizon - landmarks;
  eps_regular_ts_ =
      regular == 0 ? eps_landmark_ts_
                   : (1.0 - options_.landmark_fraction) * native_epsilon_ /
                         static_cast<double>(regular);

  Reset();
  return Status::OK();
}

void LandmarkPpm::Reset() {
  last_published_.assign(type_count_, 0.0);
  has_published_ = false;
}

bool LandmarkPpm::IsLandmark(const Window& window) const {
  return std::any_of(window.events.begin(), window.events.end(),
                     [this](const Event& e) {
                       return private_types_.count(e.type()) > 0;
                     });
}

StatusOr<PublishedView> LandmarkPpm::PublishWindow(const Window& window,
                                                   Rng* rng) {
  if (type_count_ == 0) {
    return Status::FailedPrecondition("Initialize() not called");
  }
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");

  std::vector<double> counts(type_count_, 0.0);
  for (const Event& e : window.events) {
    if (e.type() < type_count_) counts[e.type()] += 1.0;
  }

  const double ts_budget =
      IsLandmark(window) ? eps_landmark_ts_ : eps_regular_ts_;
  const double eps_test = ts_budget / 2.0;
  const double eps_pub = ts_budget / 2.0;

  bool publish = true;
  if (has_published_) {
    // Adaptive sampling: noisy mean-absolute dissimilarity vs last release.
    double dis = 0.0;
    for (size_t t = 0; t < type_count_; ++t) {
      dis += std::abs(counts[t] - last_published_[t]);
    }
    dis /= static_cast<double>(type_count_);
    PLDP_ASSIGN_OR_RETURN(
        auto dis_mech,
        LaplaceMechanism::Create(1.0 / static_cast<double>(type_count_),
                                 eps_test));
    publish = dis_mech.AddNoise(dis, rng) > 1.0 / eps_pub;
  }

  if (publish) {
    PLDP_ASSIGN_OR_RETURN(
        auto pub_mech, LaplaceMechanism::Create(/*sensitivity=*/1.0, eps_pub));
    for (size_t t = 0; t < type_count_; ++t) {
      last_published_[t] = pub_mech.AddNoise(counts[t], rng);
    }
    has_published_ = true;
  }

  PublishedView view;
  view.presence.assign(type_count_, false);
  for (size_t t = 0; t < type_count_; ++t) {
    view.presence[t] = last_published_[t] >= options_.presence_threshold;
  }
  return view;
}

}  // namespace pldp
