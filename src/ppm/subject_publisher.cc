// Copyright 2026 The PLDP Authors.

#include "ppm/subject_publisher.h"

#include <algorithm>
#include <utility>

namespace pldp {

SubjectViewPublisher::SubjectViewPublisher(SubjectPublisherOptions options)
    : options_(std::move(options)) {
  if (options_.window_size <= 0) {
    error_ = Status::InvalidArgument("window_size must be > 0");
    return;
  }
  if (!options_.factory) {
    error_ = Status::InvalidArgument("mechanism factory must be set");
    return;
  }
  targets_.reserve(options_.queries.size());
  for (const BinaryQuery& q : options_.queries) {
    targets_.push_back(&options_.context.patterns->Get(q.target));
  }
}

StatusOr<SubjectViewPublisher::SubjectState*> SubjectViewPublisher::GetOrCreate(
    const Event& event) {
  auto it = subjects_.find(event.stream());
  if (it != subjects_.end()) return &it->second;

  PLDP_ASSIGN_OR_RETURN(std::unique_ptr<PrivacyMechanism> mechanism,
                        options_.factory());
  PLDP_RETURN_IF_ERROR(mechanism->Initialize(options_.context));

  SubjectState state(event.stream(),
                     Rng(SubjectSeed(options_.seed, event.stream())));
  state.mechanism = std::move(mechanism);
  state.current.start = AlignWindowStart(
      event.timestamp(), options_.window_origin, options_.window_size);
  state.current.end = state.current.start + options_.window_size;
  state.results.answers.resize(options_.queries.size());
  auto inserted = subjects_.emplace(event.stream(), std::move(state));
  if (obs_.subjects) obs_.subjects->Add(1.0);
  return &inserted.first->second;
}

Status SubjectViewPublisher::PublishCurrent(SubjectState* state) {
  PLDP_ASSIGN_OR_RETURN(PublishedView view,
                        state->mechanism->PublishWindow(state->current,
                                                        &state->rng));
  for (size_t i = 0; i < options_.queries.size(); ++i) {
    state->results.answers[options_.queries[i].id].Append(
        PatternDetectedInView(view, *targets_[i]));
  }
  if (view_callback_) {
    view_callback_(state->subject, state->current, view);
  }
  ++state->results.window_count;
  ++total_windows_;
  if (obs_.windows) obs_.windows->Inc();
  state->current.events.clear();
  state->current.start = state->current.end;
  state->current.end += options_.window_size;
  return Status::OK();
}

void SubjectViewPublisher::Absorb(const Event& event) {
  owner_role_.Assert();
  if (!error_.ok() || finalized_) return;
  StatusOr<SubjectState*> state_or = GetOrCreate(event);
  if (!state_or.ok()) {
    error_ = state_or.status();
    return;
  }
  SubjectState* state = state_or.value();
  // Close every window the event skipped past — empty windows are still
  // published (an evaluation point with noise can answer positive), exactly
  // as TumblingWindower emits them.
  while (event.timestamp() >= state->current.end) {
    Status s = PublishCurrent(state);
    if (!s.ok()) {
      error_ = s;
      return;
    }
  }
  state->current.events.push_back(event);
}

Status SubjectViewPublisher::Finalize() {
  owner_role_.Assert();
  if (finalized_) return error_;
  finalized_ = true;
  if (!error_.ok()) return error_;
  // Ascending subject order, not hash-map order: downstream observers
  // (ViewCallback, the exchange's finalize merge keys) rely on finalize
  // publication order being a pure function of the stream content.
  std::vector<StreamId> ids = SubjectIds();
  for (StreamId id : ids) {
    // The open window holds the subject's last event (events are only ever
    // appended to the open window), so one publication closes the series at
    // the same window TumblingWindower ends on.
    Status s = PublishCurrent(&subjects_.at(id));
    if (!s.ok()) {
      error_ = s;
      return error_;
    }
  }
  return Status::OK();
}

std::vector<StreamId> SubjectViewPublisher::SubjectIds() const {
  owner_role_.Assert();
  std::vector<StreamId> ids;
  ids.reserve(subjects_.size());
  for (const auto& entry : subjects_) ids.push_back(entry.first);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const SubjectResults* SubjectViewPublisher::ResultsFor(
    StreamId subject) const {
  owner_role_.Assert();
  auto it = subjects_.find(subject);
  return it == subjects_.end() ? nullptr : &it->second.results;
}

}  // namespace pldp
