// Copyright 2026 The PLDP Authors.
//
// Privacy-preserving mechanism (PPM) interface.
//
// A PPM sits between pattern detection and query answering: for each
// evaluation window it publishes a *privacy-protected view* — which event
// types are (claimed to be) present. Binary target queries are then
// answered from the published view instead of the raw window.
//
// This is exactly the paper's binary-answer reduction (§V): presence of the
// pattern's element types within the window decides the answer, so the
// published view is a per-type presence vector.
//
//   - Pattern-level PPMs (uniform/adaptive) perturb only the presence bits
//     of types that are elements of a private pattern; all other types pass
//     through unchanged. This is the source of their data-quality edge.
//   - Stream-level baselines (BD, BA, landmark) publish noisy counts for
//     every type; presence is thresholded from the noisy counts, so noise
//     hits the entire stream.
//
// Mechanisms may be stateful across windows (the w-event baselines are);
// `Reset` restores the initial state between experiment repetitions.

#ifndef PLDP_PPM_MECHANISM_H_
#define PLDP_PPM_MECHANISM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cep/engine.h"
#include "cep/pattern.h"
#include "common/random.h"
#include "common/status.h"
#include "stream/window.h"

namespace pldp {

/// Everything a mechanism needs to configure itself.
struct MechanismContext {
  /// Event-type space (presence vectors are indexed by type id).
  const EventTypeRegistry* event_types = nullptr;
  /// All registered patterns (private and target).
  const PatternRegistry* patterns = nullptr;
  /// The pattern types the data subjects declared private.
  std::vector<PatternId> private_patterns;
  /// Pattern-level privacy budget ε granted per private pattern.
  double epsilon = 1.0;
  /// Historical windows for adaptive tuning (may be empty).
  const std::vector<Window>* history = nullptr;
  /// Target patterns used by adaptive tuning to score quality.
  std::vector<PatternId> target_patterns;
  /// Quality trade-off hyper-parameter α of Q = α·Prec + (1−α)·Rec.
  double alpha = 0.5;
};

/// The privacy-protected content of one window: presence per event type.
struct PublishedView {
  /// presence[t] == true: the mechanism claims at least one event of type t
  /// occurred in the window. Indexed by EventTypeId; size = registry size.
  std::vector<bool> presence;
};

/// Evaluates a pattern on a published view.
///
/// Under the binary reduction, kConjunction and kSequence both require all
/// element types present (an injected presence bit carries no order, so
/// order degenerates to co-occurrence — the paper's queries are exactly of
/// this kind); kDisjunction requires any.
bool PatternDetectedInView(const PublishedView& view, const Pattern& pattern);

/// Builds the truthful view of a window (no privacy).
PublishedView TrueView(const Window& window, size_t type_count);

/// Abstract PPM.
class PrivacyMechanism {
 public:
  virtual ~PrivacyMechanism() = default;

  /// Validates the context and prepares internal state. Must be called
  /// before the first PublishWindow.
  virtual Status Initialize(const MechanismContext& context) = 0;

  /// Publishes the protected view of the next window. Windows arrive in
  /// temporal order; stateful mechanisms rely on that.
  virtual StatusOr<PublishedView> PublishWindow(const Window& window,
                                                Rng* rng) = 0;

  /// Clears inter-window state (start of a new repetition / stream).
  virtual void Reset() = 0;

  /// Mechanism name for reports ("uniform", "bd", ...).
  virtual std::string name() const = 0;
};

/// Creates fresh, un-Initialized mechanism instances. The sharded service
/// path (ppm/subject_publisher.h) instantiates one mechanism per data
/// subject from a factory, so stateful mechanisms never share inter-window
/// state across subjects.
using MechanismFactory =
    std::function<StatusOr<std::unique_ptr<PrivacyMechanism>>()>;

/// No-op mechanism: publishes the truthful view. Gives Q_ord in MRE
/// computations and doubles as the "no privacy" control in benches.
class PassthroughMechanism final : public PrivacyMechanism {
 public:
  Status Initialize(const MechanismContext& context) override;
  StatusOr<PublishedView> PublishWindow(const Window& window,
                                        Rng* rng) override;
  void Reset() override {}
  std::string name() const override { return "passthrough"; }

 private:
  size_t type_count_ = 0;
};

}  // namespace pldp

#endif  // PLDP_PPM_MECHANISM_H_
