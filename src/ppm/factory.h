// Copyright 2026 The PLDP Authors.
//
// Mechanism factory: maps the names used throughout the benches and
// examples ("passthrough", "uniform", "adaptive", "bd", "ba", "landmark")
// to fresh mechanism instances with the given options.

#ifndef PLDP_PPM_FACTORY_H_
#define PLDP_PPM_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "ppm/adaptive.h"
#include "ppm/landmark.h"
#include "ppm/mechanism.h"
#include "ppm/pattern_level.h"
#include "ppm/w_event.h"

namespace pldp {

/// Options bundle covering every mechanism family.
struct MechanismFactoryOptions {
  AdaptivePpmOptions adaptive;
  WEventOptions w_event;
  LandmarkOptions landmark;
};

/// Creates a mechanism by name; NotFound for unknown names.
StatusOr<std::unique_ptr<PrivacyMechanism>> MakeMechanism(
    const std::string& name, const MechanismFactoryOptions& options = {});

/// The mechanism names in canonical report order.
std::vector<std::string> AllMechanismNames();

/// Wraps MakeMechanism(name, options) as a reusable factory — the form the
/// per-subject publisher (ppm/subject_publisher.h) and ParallelPrivateEngine
/// consume.
MechanismFactory NamedMechanismFactory(const std::string& name,
                                       MechanismFactoryOptions options = {});

}  // namespace pldp

#endif  // PLDP_PPM_FACTORY_H_
