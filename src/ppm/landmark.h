// Copyright 2026 The PLDP Authors.
//
// Landmark-privacy baseline, after Katsomallos, Tzompanaki, Kotzinos:
// "Landmark Privacy: Configurable Differential Privacy Protection for Time
// Series", CODASPY 2022 — the *Adaptive* allocation scheme the paper
// compares against.
//
// Landmark privacy treats some timestamps as significant ("landmarks") and
// protects them with a dedicated share of the budget. In PLDP's setup a
// window is a landmark when it contains an event type belonging to a
// private pattern. The Adaptive scheme publishes a noisy count vector when
// the (noisy) dissimilarity to the last release warrants it, and skips
// otherwise, spending landmark budget at landmark timestamps and regular
// budget elsewhere.
//
// Budget conversion: `MechanismContext.epsilon` is pattern-level ε; the
// native landmark budget is derived with LandmarkBudgetForPatternLevel so
// the budget aggregated over the private pattern's landmark timestamps
// matches. The expected landmark count over the horizon is estimated from
// the historical windows (or can be pinned via options).

#ifndef PLDP_PPM_LANDMARK_H_
#define PLDP_PPM_LANDMARK_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "ppm/mechanism.h"

namespace pldp {

/// Options of the landmark baseline.
struct LandmarkOptions {
  /// Share of the budget reserved for landmark timestamps.
  double landmark_fraction = 0.5;
  /// Horizon (number of windows per stream). 0 = estimate from history.
  size_t horizon = 0;
  /// Expected landmark count within the horizon. 0 = estimate from history.
  size_t landmark_count = 0;
  /// Presence threshold applied to published noisy counts.
  double presence_threshold = 0.5;
};

/// Landmark privacy with adaptive skip-or-publish sampling.
class LandmarkPpm final : public PrivacyMechanism {
 public:
  explicit LandmarkPpm(LandmarkOptions options = {}) : options_(options) {}

  Status Initialize(const MechanismContext& context) override;
  StatusOr<PublishedView> PublishWindow(const Window& window,
                                        Rng* rng) override;
  void Reset() override;
  std::string name() const override { return "landmark"; }

  double native_epsilon() const { return native_epsilon_; }
  double landmark_epsilon_per_ts() const { return eps_landmark_ts_; }
  double regular_epsilon_per_ts() const { return eps_regular_ts_; }

  /// True when the window contains an event of a private-pattern type.
  bool IsLandmark(const Window& window) const;

 private:
  LandmarkOptions options_;
  MechanismContext context_;
  size_t type_count_ = 0;
  std::unordered_set<EventTypeId> private_types_;

  double native_epsilon_ = 0.0;
  double eps_landmark_ts_ = 0.0;
  double eps_regular_ts_ = 0.0;

  std::vector<double> last_published_;
  bool has_published_ = false;
};

}  // namespace pldp

#endif  // PLDP_PPM_LANDMARK_H_
