// Copyright 2026 The PLDP Authors.

#include "ppm/adaptive.h"

#include <algorithm>

#include "common/logging.h"
#include "quality/metrics.h"

namespace pldp {

StatusOr<double> EvaluateAllocationQuality(const BudgetAllocation& allocation,
                                           const Pattern& private_pattern,
                                           const MechanismContext& context,
                                           size_t trials, uint64_t seed) {
  if (context.history == nullptr || context.history->empty()) {
    return Status::FailedPrecondition("no historical windows to evaluate on");
  }
  if (context.target_patterns.empty()) {
    return Status::FailedPrecondition("no target patterns to score against");
  }
  if (trials == 0) return Status::InvalidArgument("trials must be > 0");

  PLDP_ASSIGN_OR_RETURN(auto mechanism,
                        PatternRandomizedResponse::FromAllocation(allocation));
  const auto& elems = private_pattern.elements();
  const size_t type_count = context.event_types->size();

  ConfusionMatrix cm;
  Rng rng(seed);
  for (size_t trial = 0; trial < trials; ++trial) {
    for (const Window& w : *context.history) {
      PublishedView true_view = TrueView(w, type_count);

      // Perturb only this private pattern's element indicators.
      std::vector<bool> indicators(elems.size());
      for (size_t i = 0; i < elems.size(); ++i) {
        indicators[i] = true_view.presence[elems[i]];
      }
      PLDP_ASSIGN_OR_RETURN(std::vector<bool> noisy,
                            mechanism.Perturb(indicators, &rng));
      PublishedView noisy_view = true_view;
      for (size_t i = 0; i < elems.size(); ++i) {
        noisy_view.presence[elems[i]] = noisy[i];
      }

      for (PatternId target : context.target_patterns) {
        const Pattern& tp = context.patterns->Get(target);
        bool truth = PatternDetectedInView(true_view, tp);
        bool predicted = PatternDetectedInView(noisy_view, tp);
        cm.Add(truth, predicted);
      }
    }
  }
  return cm.Quality(context.alpha);
}

StatusOr<BudgetAllocation> BidirectionalStepwiseSearch(
    const Pattern& private_pattern, const MechanismContext& context,
    const AdaptivePpmOptions& options) {
  const size_t m = private_pattern.length();
  // Algorithm 1 line 1: uniform initialization.
  PLDP_ASSIGN_OR_RETURN(BudgetAllocation current,
                        BudgetAllocation::Uniform(context.epsilon, m));
  if (m == 1) return current;  // nothing to redistribute

  // Line 2: step size; the paper suggests δε = m·ε/100.
  double step = options.step_epsilon > 0.0
                    ? options.step_epsilon
                    : static_cast<double>(m) * context.epsilon / 100.0;

  // Line 3: initial quality.
  PLDP_ASSIGN_OR_RETURN(
      double best_q,
      EvaluateAllocationQuality(current, private_pattern, context,
                                options.trials, options.seed));

  // Lines 4-13: keep shifting budget onto the best-scoring element while
  // quality does not decrease.
  for (size_t round = 0; round < options.max_rounds; ++round) {
    // Common random numbers: one evaluation seed per round, shared by all
    // candidates of the round, so candidate ranking is not noise-dominated.
    uint64_t round_seed = SplitMix64(options.seed + round + 1).Next();

    double round_best_q = -1.0;
    size_t round_best_i = m;
    for (size_t i = 0; i < m; ++i) {
      BudgetAllocation candidate = current;  // lines 6-9: try each element
      PLDP_RETURN_IF_ERROR(candidate.Shift(i, step));
      PLDP_ASSIGN_OR_RETURN(
          double q, EvaluateAllocationQuality(candidate, private_pattern,
                                              context, options.trials,
                                              round_seed));
      if (q > round_best_q) {
        round_best_q = q;
        round_best_i = i;
      }
    }
    // Lines 10-12: accept the winner while quality does not drop.
    if (round_best_i == m || round_best_q < best_q + options.min_improvement) {
      break;
    }
    PLDP_RETURN_IF_ERROR(current.Shift(round_best_i, step));
    best_q = round_best_q;
  }
  return current;
}

StatusOr<BudgetAllocation> AdaptivePatternPpm::MakeAllocation(
    const Pattern& pattern, const MechanismContext& context) {
  if (context.history == nullptr || context.history->empty() ||
      context.target_patterns.empty()) {
    PLDP_LOG(Warning) << "adaptive PPM for pattern '" << pattern.name()
                      << "': no history/targets, falling back to uniform";
    return BudgetAllocation::Uniform(context.epsilon, pattern.length());
  }
  return BidirectionalStepwiseSearch(pattern, context, options_);
}

}  // namespace pldp
