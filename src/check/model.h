// Copyright 2026 The PLDP Authors.
//
// A loom-style stateless model checker for the runtime's lock-free
// protocols. `RunModel` executes a test body repeatedly under a
// cooperative scheduler that serializes all model threads (one runnable
// at a time) and explores the tree of scheduling + value decisions:
//
//   - bounded-preemption DFS (default): every schedule with at most
//     `preemption_bound` preemptions is visited exactly once, so a clean
//     result is an exhaustiveness statement, not a sampling statement;
//   - seeded random walk (`random = true`): uniform decisions, unbounded
//     preemptions, for long soak passes beyond the DFS bound.
//
// Threads are real std::threads driven by a baton handoff (exactly one
// holds the baton; everyone else is parked on a condition variable).
// ucontext-style fibers would be ~an order of magnitude faster per
// schedule point, but ucontext is POSIX-obsolescent, breaks ASan/TSan
// stack bookkeeping, and hides the model threads from debuggers; with
// protocol-sized test bodies (tens of schedule points) the baton is fast
// enough and every failing schedule has a real stack per thread.
//
// Memory model: each pldp::Atomic maps to a per-location store history.
// A relaxed load may read any store that coherence and happens-before do
// not forbid (a per-thread read floor per location models coherence; a
// store that happens-before the load hides everything older) — the
// choice of store is itself a DFS decision, so stale values are explored
// systematically rather than left to hardware luck. Acquire loads join
// the release clock of the store they read; release stores snapshot the
// writer's vector clock; RMWs always read the newest store (atomic
// read-modify-write acts on the latest value in modification order) and
// extend its release sequence. seq_cst fences exchange per-location
// visibility floors through a global SC state, which is exactly the
// guarantee the Doorbell and stall-floor Dekker handshakes rely on (see
// docs/ARCHITECTURE.md "Model checking" for what this approximation does
// and does not capture).
//
// Detected failure classes: model assertion failures (PLDP_MODEL_ASSERT
// / PLDP_PROTOCOL_ASSERT), data races on RaceCell payloads (vector-clock
// check on every read/write), deadlocks (no thread can run; a thread
// parked on a condition variable with work pending — the lost-wakeup
// shape — is reported as such), livelocks (every live thread spinning
// with no visible write in between), and step-budget exhaustion. On
// failure the full decision trace is printed together with a
// PLDP_MODEL_REPLAY string that re-runs exactly that schedule with
// per-step logging (see docs/OPERATIONS.md).

#ifndef PLDP_CHECK_MODEL_H_
#define PLDP_CHECK_MODEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace pldp {
namespace check {

// Hard cap on simultaneously live model threads per execution (slots are
// reused across executions but not within one). Protocol tests use 2-4.
constexpr int kMaxModelThreads = 8;

struct ModelConfig {
  const char* name = "model";
  // DFS: schedules with more than this many preemptions (switching away
  // from a thread that could have kept running) are not explored.
  int preemption_bound = 2;
  // Random walk instead of DFS. Unbounded preemptions, `random_iterations`
  // executions with decision sequences derived from `seed`.
  bool random = false;
  uint64_t seed = 1;
  uint64_t random_iterations = 1024;
  // Safety valves.
  uint64_t max_steps_per_exec = 200000;  // decisions per execution
  uint64_t max_executions = 0;           // 0 = run DFS to exhaustion
  int livelock_rounds = 8;  // all-yielded promotions with no visible write
  size_t trace_tail = 256;  // schedule steps printed on failure
};

struct ModelResult {
  bool failed = false;
  // DFS ran out of schedules within the preemption bound (i.e. the
  // bounded space was explored exhaustively). Always false in random mode.
  bool exhausted = false;
  uint64_t executions = 0;
  uint64_t decisions = 0;  // total decision points taken across executions
  std::string report;      // human-readable failure report (empty if ok)
  std::string replay;      // PLDP_MODEL_REPLAY value for the failure
};

// Runs `body` under the checker. `body` executes as model thread 0 and
// may spawn further threads with ModelSpawn. All shared state exercised
// through pldp::Atomic / RaceCell / SyncMutex must be constructed inside
// `body` so each execution starts from identical initial state.
//
// Environment overrides (picked up here so CI can deepen runs without
// recompiling): PLDP_MODEL_RANDOM_ITERS, PLDP_MODEL_MAX_EXECS,
// PLDP_MODEL_REPLAY (run exactly one execution with the given decision
// string, logging every step to stderr).
ModelResult RunModel(const ModelConfig& config,
                     const std::function<void()>& body);

// ---- In-run API (no-ops / fallbacks outside an active RunModel) ----

// Spawns a cooperative model thread; returns its tid. `name` is used in
// schedule traces.
int ModelSpawn(const char* name, std::function<void()> fn);
// Blocks (in model time) until `tid` finishes; joins its clock.
void ModelJoin(int tid);
// Spin-loop backoff point: deprioritizes the caller until every other
// thread is blocked/yielded or a visible write occurs (loom's yield
// semantics — prevents schedule explosion from spin loops and turns
// never-satisfied spins into livelock reports).
void ModelYieldSpin();
// True while the calling thread is a model thread inside RunModel.
bool InModelRun();
// Records a failure for the current execution and aborts it.
void ModelFailNow(const std::string& what);
// Assertion helpers (used by PLDP_MODEL_ASSERT / PLDP_PROTOCOL_ASSERT).
void ModelAssertFail(const char* expr, const char* file, int line);
void ProtocolAssertFail(const char* expr, const char* file, int line);

#define PLDP_MODEL_ASSERT(cond)                                    \
  do {                                                             \
    if (!(cond)) ::pldp::check::ModelAssertFail(#cond, __FILE__, __LINE__); \
  } while (0)

namespace internal {

// Fixed-size vector clock: no allocation, trivially copyable, cheap to
// snapshot into every store record.
struct VClock {
  uint32_t v[kMaxModelThreads] = {};
  void Join(const VClock& o) {
    for (int i = 0; i < kMaxModelThreads; ++i) {
      if (o.v[i] > v[i]) v[i] = o.v[i];
    }
  }
  bool LeqOf(const VClock& o) const {
    for (int i = 0; i < kMaxModelThreads; ++i) {
      if (v[i] > o.v[i]) return false;
    }
    return true;
  }
};

// Per-atomic-location model state. Owned by the ShadowAtomic that fronts
// it; reset lazily at first touch of each execution.
struct Location;

Location* LocationCreate(uint64_t initial_bits);
void LocationDestroy(Location* loc);

uint64_t AtomicLoad(Location* loc, std::memory_order mo);
void AtomicStore(Location* loc, uint64_t bits, std::memory_order mo);
// Generic RMW: `fn(old_bits, ctx)` computes the new value; returns old.
uint64_t AtomicRmw(Location* loc, std::memory_order mo,
                   uint64_t (*fn)(uint64_t, void*), void* ctx);
// Compare-exchange. On failure writes the observed value to *expected
// (failure order semantics applied). Spurious failures are not modeled.
bool AtomicCas(Location* loc, uint64_t* expected, uint64_t desired,
               std::memory_order success, std::memory_order failure);
void ThreadFence(std::memory_order mo);

// Data-race detection for non-atomic payload cells (queue slots). State
// is embedded by value; reset lazily per execution via `epoch`.
struct RaceState {
  uint64_t epoch = 0;
  int ordinal = -1;
  int last_writer = -1;  // tid, -1 = pristine
  uint32_t write_stamp = 0;
  // (tid, stamp) of reads since the last write.
  std::vector<std::pair<int, uint32_t>> readers;
};
void RaceRead(RaceState& rs);
void RaceWrite(RaceState& rs);

// Model mutex / condvar state (fronted by ModelMutex / ModelCondVar).
struct MutexState {
  uint64_t epoch = 0;
  int ordinal = -1;
  int owner = -1;  // tid
  VClock clock;    // released-at clock, joined by the next owner
};
void MutexLockOp(MutexState& ms);
void MutexUnlockOp(MutexState& ms);

struct CondVarState {
  uint64_t epoch = 0;
  int ordinal = -1;
  std::vector<int> waiters;  // tids parked on this condvar
};
// Atomically unlocks `ms`, parks on `cs`, re-locks `ms` after a notify.
// No spurious wakeups are modeled (document: predicates must be re-read
// under the lock, which the wait(pred) shape enforces anyway).
void CondWaitOp(CondVarState& cs, MutexState& ms);
void CondNotifyAllOp(CondVarState& cs);

}  // namespace internal
}  // namespace check
}  // namespace pldp

#endif  // PLDP_CHECK_MODEL_H_
