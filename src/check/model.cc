// Copyright 2026 The PLDP Authors.

#include "check/model.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_map>

namespace pldp {
namespace check {

namespace internal {

// Per-atomic-location store history (see model.h file comment).
struct Location {
  uint64_t latest_bits = 0;  // canonical value outside runs / reset seed
  uint64_t epoch = 0;
  int ordinal = -1;
  int last_sc = -1;  // index of the newest seq_cst store, -1 if none
  struct Store {
    uint64_t value = 0;
    VClock rel;   // release clock (absorbed by acquire loads)
    VClock snap;  // storing thread's full clock at the store
    int tid = -1;
  };
  std::vector<Store> history;
};

}  // namespace internal

namespace {

using internal::CondVarState;
using internal::Location;
using internal::MutexState;
using internal::RaceState;
using internal::VClock;

// Thrown to unwind a model thread when the execution aborts (failure
// found or teardown). Caught by the slot loop.
struct ModelAbort {};

enum class TStatus { kUnborn, kRunnable, kYielded, kBlocked, kFinished };
enum class BlockKind { kNone, kJoin, kMutex, kCondVar };

enum class Op : uint8_t {
  kLoad,
  kStore,
  kRmw,
  kCasOk,
  kCasFail,
  kFence,
  kCellRead,
  kCellWrite,
  kLock,
  kUnlock,
  kCondWait,
  kNotify,
  kSpawn,
  kJoin,
};

struct TraceEv {
  int tid;
  Op op;
  int loc;  // location/cell/mutex/condvar ordinal, -1 for fences
  int mo;   // memory order, -1 when not applicable
  uint64_t a;
  uint64_t b;
};

struct ThreadRec {
  int tid = -1;
  std::string name;
  TStatus status = TStatus::kUnborn;
  BlockKind bkind = BlockKind::kNone;
  const void* bobj = nullptr;
  int join_target = -1;
  VClock clock;
  VClock fence_rel;     // clock at the latest release fence
  VClock acq_pending;   // rel clocks seen by relaxed loads, pending a fence
  // Eventual visibility: set when the driver promotes this thread out of
  // a spin-yield because nothing else can run — its loads then read the
  // newest store (the C++ forward-progress guarantee that a store becomes
  // visible "in a finite period of time"), so a spin loop whose exit
  // condition HAS been satisfied cannot be misreported as a livelock.
  // Cleared when the thread yields again.
  bool fresh_read = false;
  std::unordered_map<const void*, size_t> floor;         // coherence floor
  std::unordered_map<const void*, size_t> fence_export;  // sc-fence export
  // Baton.
  std::condition_variable cv;
  bool go = false;
  bool has_work = false;
  std::function<void()> work;
  std::thread os;
};

struct Decision {
  uint32_t chosen;
  uint32_t count;
};

// The one checker instance. RunModel is not reentrant and model suites
// run their RunModel calls sequentially, so a process-wide singleton
// keeps the shadow-type hookup trivial (a ShadowAtomic has no way to
// name "its" engine).
struct Engine {
  std::mutex mx;
  std::condition_variable driver_cv;
  bool control_returned = false;
  bool pool_shutdown = false;

  ModelConfig cfg;
  bool active = false;
  bool replay_mode = false;

  // Per-execution state.
  uint64_t epoch = 0;
  int next_loc_ordinal = 0;
  int next_cell_ordinal = 0;
  int next_sync_ordinal = 0;
  uint64_t steps = 0;
  bool aborted = false;
  bool failed = false;
  std::string failure;
  std::map<const void*, size_t> sc_floor;  // seq_cst fence visibility floors
  bool progress = false;
  int last_tid = -1;
  int preempts = 0;
  int no_progress_rounds = 0;
  std::vector<TraceEv> trace;
  std::vector<Decision> path;
  std::vector<uint32_t> forced;
  size_t cursor = 0;
  uint64_t rng = 0;

  // Totals / results.
  uint64_t total_decisions = 0;
  std::string report;
  std::string replay_out;

  std::unique_ptr<ThreadRec> threads[kMaxModelThreads];
  int nthreads = 0;
};

Engine g;
thread_local ThreadRec* t_self = nullptr;

bool IsAcquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst || mo == std::memory_order_consume;
}
bool IsRelease(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}
bool IsSeqCst(std::memory_order mo) {
  return mo == std::memory_order_seq_cst;
}

const char* MoName(int mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "cons";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "ar";
    case std::memory_order_seq_cst: return "sc";
    default: return "?";
  }
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kRmw: return "rmw";
    case Op::kCasOk: return "cas-ok";
    case Op::kCasFail: return "cas-fail";
    case Op::kFence: return "fence";
    case Op::kCellRead: return "cell-read";
    case Op::kCellWrite: return "cell-write";
    case Op::kLock: return "lock";
    case Op::kUnlock: return "unlock";
    case Op::kCondWait: return "cond-wait";
    case Op::kNotify: return "notify";
    case Op::kSpawn: return "spawn";
    case Op::kJoin: return "join";
  }
  return "?";
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t NextRng() {
  g.rng = Mix64(g.rng);
  return g.rng;
}

void FormatTraceEv(const TraceEv& e, std::string* out) {
  char buf[160];
  const ThreadRec* t =
      (e.tid >= 0 && e.tid < kMaxModelThreads) ? g.threads[e.tid].get()
                                               : nullptr;
  snprintf(buf, sizeof(buf), "  T%d(%s) %s #%d [%s] a=%llu b=%llu\n", e.tid,
           t ? t->name.c_str() : "?", OpName(e.op), e.loc,
           e.mo >= 0 ? MoName(e.mo) : "-",
           static_cast<unsigned long long>(e.a),
           static_cast<unsigned long long>(e.b));
  out->append(buf);
}

void Trace(Op op, int loc, int mo, uint64_t a, uint64_t b) {
  TraceEv ev{t_self ? t_self->tid : -1, op, loc, mo, a, b};
  if (g.trace.size() < 100000) g.trace.push_back(ev);
  if (g.replay_mode) {
    std::string line;
    FormatTraceEv(ev, &line);
    fputs(line.c_str(), stderr);
  }
}

// ---- Decision points -------------------------------------------------

uint32_t Choose(uint32_t count) {
  if (count <= 1) return 0;
  uint32_t c;
  if (g.cursor < g.forced.size()) {
    c = g.forced[g.cursor];
    if (c >= count) c = count - 1;  // replay from a diverging build: clamp
  } else if (g.cfg.random && !g.replay_mode) {
    c = static_cast<uint32_t>(NextRng() % count);
  } else {
    c = 0;
  }
  g.path.push_back({c, count});
  ++g.cursor;
  ++g.total_decisions;
  return c;
}

bool NextSchedule() {
  auto& p = g.path;
  while (!p.empty() && p.back().chosen + 1 >= p.back().count) p.pop_back();
  if (p.empty()) return false;
  ++p.back().chosen;
  g.forced.clear();
  g.forced.reserve(p.size());
  for (const Decision& d : p) g.forced.push_back(d.chosen);
  return true;
}

// ---- Baton handoff ---------------------------------------------------

// Must be called with g.mx held and g.aborted true. Throws ModelAbort to
// unwind the thread unless it is already unwinding (then the caller runs
// its op in "direct mode": no scheduling, newest-value semantics, so
// destructors can still make progress during teardown).
void AbortCheckLocked() {
  if (std::uncaught_exceptions() == 0) throw ModelAbort{};
}

// Pre-op yield point: hands the baton to the driver and waits for the
// next grant. No-op outside an active run or in direct (abort) mode.
void SchedulePoint() {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active) return;
  std::unique_lock<std::mutex> lk(g.mx);
  if (g.aborted) {
    AbortCheckLocked();
    return;
  }
  g.control_returned = true;
  g.driver_cv.notify_one();
  r->cv.wait(lk, [r] { return r->go; });
  r->go = false;
  if (g.aborted) AbortCheckLocked();
}

// Blocks the calling thread (join/mutex/condvar). Returns when some
// other thread made it runnable again and the driver granted it.
void BlockSelf(BlockKind k, const void* obj, int target) {
  ThreadRec* r = t_self;
  std::unique_lock<std::mutex> lk(g.mx);
  if (g.aborted) {
    AbortCheckLocked();
    return;
  }
  r->status = TStatus::kBlocked;
  r->bkind = k;
  r->bobj = obj;
  r->join_target = target;
  g.control_returned = true;
  g.driver_cv.notify_one();
  r->cv.wait(lk, [r] { return r->go; });
  r->go = false;
  r->bkind = BlockKind::kNone;
  r->bobj = nullptr;
  r->join_target = -1;
  if (g.aborted) AbortCheckLocked();
}

// Any visible write: wake spinners, reset the livelock counter's basis.
void VisibleWrite() {
  g.progress = true;
  for (int i = 0; i < g.nthreads; ++i) {
    ThreadRec* t = g.threads[i].get();
    if (t != nullptr && t->status == TStatus::kYielded) {
      t->status = TStatus::kRunnable;
    }
  }
}

void WakeBlockedOn(const void* obj) {
  for (int i = 0; i < g.nthreads; ++i) {
    ThreadRec* t = g.threads[i].get();
    if (t != nullptr && t->status == TStatus::kBlocked && t->bobj == obj) {
      t->status = TStatus::kRunnable;
    }
  }
}

// Records the first failure and unwinds the calling model thread.
void FailNow(const std::string& msg) {
  if (!g.failed) {
    g.failed = true;
    g.failure = msg;
  }
  g.aborted = true;
  if (std::uncaught_exceptions() == 0) throw ModelAbort{};
}

size_t FloorOf(ThreadRec* r, const void* loc) {
  auto it = r->floor.find(loc);
  return it == r->floor.end() ? 0 : it->second;
}

// ---- Thread pool -----------------------------------------------------

void SlotLoop(ThreadRec* r) {
  std::unique_lock<std::mutex> lk(g.mx);
  for (;;) {
    r->cv.wait(lk, [r] { return r->has_work || g.pool_shutdown; });
    if (g.pool_shutdown) return;
    t_self = r;
    r->cv.wait(lk, [r] { return r->go || g.pool_shutdown; });
    if (g.pool_shutdown) return;
    r->go = false;
    lk.unlock();
    std::string excuse;
    try {
      r->work();
    } catch (const ModelAbort&) {
    } catch (const std::exception& e) {
      excuse = std::string("uncaught exception in model thread: ") + e.what();
    } catch (...) {
      excuse = "uncaught non-std exception in model thread";
    }
    lk.lock();
    if (!excuse.empty()) {
      if (!g.failed) {
        g.failed = true;
        g.failure = excuse;
      }
      g.aborted = true;
    }
    r->status = TStatus::kFinished;
    r->has_work = false;
    r->work = nullptr;
    for (int i = 0; i < g.nthreads; ++i) {
      ThreadRec* o = g.threads[i].get();
      if (o != nullptr && o->status == TStatus::kBlocked &&
          o->bkind == BlockKind::kJoin && o->join_target == r->tid) {
        o->status = TStatus::kRunnable;
      }
    }
    t_self = nullptr;
    g.control_returned = true;
    g.driver_cv.notify_one();
  }
}

ThreadRec* GetSlot(int tid) {
  if (!g.threads[tid]) {
    auto rec = std::make_unique<ThreadRec>();
    rec->tid = tid;
    ThreadRec* p = rec.get();
    g.threads[tid] = std::move(rec);
    p->os = std::thread(SlotLoop, p);
  }
  return g.threads[tid].get();
}

// ---- Lazy per-execution reset of shadow state ------------------------

void EnsureFresh(Location* loc) {
  if (loc->epoch == g.epoch) return;
  loc->epoch = g.epoch;
  loc->ordinal = g.next_loc_ordinal++;
  loc->history.clear();
  loc->history.push_back({loc->latest_bits, VClock{}, VClock{}, -1});
  loc->last_sc = -1;
}

void EnsureFresh(RaceState& rs) {
  if (rs.epoch == g.epoch) return;
  rs.epoch = g.epoch;
  rs.ordinal = g.next_cell_ordinal++;
  rs.last_writer = -1;
  rs.write_stamp = 0;
  rs.readers.clear();
}

void EnsureFresh(MutexState& ms) {
  if (ms.epoch == g.epoch) return;
  ms.epoch = g.epoch;
  ms.ordinal = g.next_sync_ordinal++;
  ms.owner = -1;
  ms.clock = VClock{};
}

void EnsureFresh(CondVarState& cs) {
  if (cs.epoch == g.epoch) return;
  cs.epoch = g.epoch;
  cs.ordinal = g.next_sync_ordinal++;
  cs.waiters.clear();
}

// ---- Reporting -------------------------------------------------------

std::string DeadlockReport(bool livelock) {
  std::ostringstream os;
  os << (livelock ? "livelock: every live thread is spinning with no "
                    "visible write in between"
                  : "deadlock: no thread can run");
  bool lost_wakeup = false;
  for (int i = 0; i < g.nthreads; ++i) {
    ThreadRec* t = g.threads[i].get();
    if (t == nullptr) continue;
    os << "\n  T" << i << "(" << t->name << "): ";
    switch (t->status) {
      case TStatus::kRunnable: os << "runnable"; break;
      case TStatus::kYielded: os << "spin-yielded"; break;
      case TStatus::kFinished: os << "finished"; break;
      case TStatus::kUnborn: os << "unborn"; break;
      case TStatus::kBlocked:
        switch (t->bkind) {
          case BlockKind::kJoin:
            os << "blocked joining T" << t->join_target;
            break;
          case BlockKind::kMutex: os << "blocked on mutex"; break;
          case BlockKind::kCondVar:
            os << "parked on condvar";
            lost_wakeup = true;
            break;
          default: os << "blocked"; break;
        }
        break;
    }
  }
  if (lost_wakeup) {
    os << "\n  (a thread is parked on a condvar while no notifier can run "
          "anymore: lost-wakeup shape)";
  }
  return os.str();
}

void BuildReport() {
  std::ostringstream os;
  os << "model check FAILED (" << g.cfg.name << "): " << g.failure << "\n";
  os << "decisions this execution: " << g.path.size() << "\n";
  const size_t tail =
      g.trace.size() > g.cfg.trace_tail ? g.trace.size() - g.cfg.trace_tail : 0;
  os << "schedule trace (" << (g.trace.size() - tail) << " of "
     << g.trace.size() << " steps):\n";
  std::string lines;
  for (size_t i = tail; i < g.trace.size(); ++i) {
    FormatTraceEv(g.trace[i], &lines);
  }
  os << lines;
  std::ostringstream rp;
  for (size_t i = 0; i < g.path.size(); ++i) {
    if (i) rp << ",";
    rp << g.path[i].chosen;
  }
  g.replay_out = rp.str();
  os << "replay: PLDP_MODEL_REPLAY=" << g.replay_out << "\n";
  g.report = os.str();
}

// Driver-side failure (deadlock/livelock/budget): no thread to unwind;
// mark and let the abort drain finish the execution.
void DriverFail(const std::string& msg) {
  if (!g.failed) {
    g.failed = true;
    g.failure = msg;
  }
  g.aborted = true;
}

// ---- Driver ----------------------------------------------------------

void ResetExecution() {
  std::lock_guard<std::mutex> lk(g.mx);
  ++g.epoch;
  g.next_loc_ordinal = 0;
  g.next_cell_ordinal = 0;
  g.next_sync_ordinal = 0;
  g.steps = 0;
  g.aborted = false;
  g.failed = false;
  g.failure.clear();
  g.sc_floor.clear();
  g.progress = false;
  g.last_tid = -1;
  g.preempts = 0;
  g.no_progress_rounds = 0;
  g.trace.clear();
  g.path.clear();
  g.cursor = 0;
  g.nthreads = 0;
  for (auto& slot : g.threads) {
    if (!slot) continue;
    slot->status = TStatus::kUnborn;
    slot->bkind = BlockKind::kNone;
    slot->bobj = nullptr;
    slot->join_target = -1;
    slot->clock = VClock{};
    slot->fence_rel = VClock{};
    slot->acq_pending = VClock{};
    slot->floor.clear();
    slot->fence_export.clear();
    slot->fresh_read = false;
    slot->go = false;
  }
}

void RunOneExecution(const std::function<void()>& body) {
  ResetExecution();
  ThreadRec* t0 = GetSlot(0);
  g.nthreads = 1;
  t0->name = "main";
  t0->status = TStatus::kRunnable;
  t0->clock.v[0] = 1;
  {
    std::lock_guard<std::mutex> lk(g.mx);
    t0->work = [&body] { body(); };
    t0->has_work = true;
    t0->cv.notify_one();
  }

  std::unique_lock<std::mutex> lk(g.mx);
  for (;;) {
    bool all_finished = true;
    bool any_yielded = false;
    int runnable[kMaxModelThreads];
    int n_runnable = 0;
    for (int i = 0; i < g.nthreads; ++i) {
      ThreadRec* t = g.threads[i].get();
      if (t == nullptr) continue;
      if (t->status != TStatus::kFinished) all_finished = false;
      if (t->status == TStatus::kRunnable) runnable[n_runnable++] = i;
      if (t->status == TStatus::kYielded) any_yielded = true;
    }
    if (all_finished) break;
    if (n_runnable == 0) {
      if (g.aborted) {
        // Abort drain: force everything live to run so destructors and
        // unwinding can complete.
        for (int i = 0; i < g.nthreads; ++i) {
          ThreadRec* t = g.threads[i].get();
          if (t != nullptr && (t->status == TStatus::kBlocked ||
                               t->status == TStatus::kYielded)) {
            t->status = TStatus::kRunnable;
          }
        }
        continue;
      }
      if (any_yielded) {
        if (++g.no_progress_rounds > g.cfg.livelock_rounds) {
          DriverFail(DeadlockReport(/*livelock=*/true));
          continue;
        }
        for (int i = 0; i < g.nthreads; ++i) {
          ThreadRec* t = g.threads[i].get();
          if (t != nullptr && t->status == TStatus::kYielded) {
            t->status = TStatus::kRunnable;
            t->fresh_read = true;  // eventual visibility (see ThreadRec)
          }
        }
        continue;
      }
      DriverFail(DeadlockReport(/*livelock=*/false));
      continue;
    }

    int pick;
    if (g.aborted) {
      // Drain children before their spawners (tids grow monotonically,
      // so a spawner always has a lower tid): a child's closure may
      // reference the spawner's stack, which unwinding would free.
      pick = runnable[n_runnable - 1];
    } else {
      bool last_runnable = false;
      for (int i = 0; i < n_runnable; ++i) {
        if (runnable[i] == g.last_tid) last_runnable = true;
      }
      if (last_runnable && !g.cfg.random &&
          g.preempts >= g.cfg.preemption_bound) {
        pick = g.last_tid;  // out of preemption budget: must continue
      } else {
        // Option 0 continues the previous thread (the leftmost DFS path
        // is then the low-preemption one); the rest in tid order.
        int eligible[kMaxModelThreads];
        int n_eligible = 0;
        if (last_runnable) eligible[n_eligible++] = g.last_tid;
        for (int i = 0; i < n_runnable; ++i) {
          if (runnable[i] != g.last_tid) eligible[n_eligible++] = runnable[i];
        }
        pick = eligible[Choose(static_cast<uint32_t>(n_eligible))];
        if (last_runnable && pick != g.last_tid) ++g.preempts;
      }
      if (++g.steps > g.cfg.max_steps_per_exec) {
        DriverFail("step budget exceeded (suspected livelock)");
        continue;
      }
    }

    ThreadRec* t = g.threads[pick].get();
    g.progress = false;
    g.control_returned = false;
    t->go = true;
    t->cv.notify_one();
    g.driver_cv.wait(lk, [] { return g.control_returned; });
    if (g.progress) g.no_progress_rounds = 0;
    g.last_tid = (t->status == TStatus::kRunnable) ? pick : -1;
  }
}

void ShutdownPool() {
  {
    std::lock_guard<std::mutex> lk(g.mx);
    g.pool_shutdown = true;
    for (auto& slot : g.threads) {
      if (slot) slot->cv.notify_all();
    }
  }
  for (auto& slot : g.threads) {
    if (slot && slot->os.joinable()) slot->os.join();
    slot.reset();
  }
  g.pool_shutdown = false;
}

}  // namespace

// ---- Public API ------------------------------------------------------

bool InModelRun() { return t_self != nullptr && g.active; }

ModelResult RunModel(const ModelConfig& config,
                     const std::function<void()>& body) {
  assert(!g.active && "RunModel does not nest");
  g.cfg = config;
  if (const char* s = std::getenv("PLDP_MODEL_RANDOM_ITERS")) {
    if (g.cfg.random) g.cfg.random_iterations = std::strtoull(s, nullptr, 10);
  }
  if (const char* s = std::getenv("PLDP_MODEL_MAX_EXECS")) {
    g.cfg.max_executions = std::strtoull(s, nullptr, 10);
  }
  g.forced.clear();
  g.replay_mode = false;
  if (const char* rp = std::getenv("PLDP_MODEL_REPLAY")) {
    if (*rp != '\0') {
      g.replay_mode = true;
      const char* p = rp;
      while (*p != '\0') {
        g.forced.push_back(static_cast<uint32_t>(std::strtoul(p, nullptr, 10)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
      fprintf(stderr, "[model:%s] replaying %zu forced decisions\n",
              g.cfg.name, g.forced.size());
    }
  }
  g.total_decisions = 0;
  g.report.clear();
  g.replay_out.clear();
  g.active = true;

  ModelResult res;
  uint64_t execs = 0;
  for (;;) {
    if (g.cfg.random && !g.replay_mode) {
      g.rng = Mix64(g.cfg.seed ^ Mix64(execs + 1));
    }
    RunOneExecution(body);
    ++execs;
    if (g.failed) {
      BuildReport();
      res.failed = true;
      res.report = g.report;
      res.replay = g.replay_out;
      break;
    }
    if (g.replay_mode) break;
    if (g.cfg.max_executions != 0 && execs >= g.cfg.max_executions) break;
    if (g.cfg.random) {
      if (execs >= g.cfg.random_iterations) break;
    } else if (!NextSchedule()) {
      res.exhausted = true;
      break;
    }
  }
  res.executions = execs;
  res.decisions = g.total_decisions;
  ShutdownPool();
  g.active = false;
  return res;
}

int ModelSpawn(const char* name, std::function<void()> fn) {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active) {
    fn();  // outside a run: degrade to synchronous execution
    return -1;
  }
  SchedulePoint();
  if (g.aborted) return -1;  // unwinding teardown: do not start new work
  if (g.nthreads >= kMaxModelThreads) {
    FailNow("too many model threads (kMaxModelThreads)");
  }
  const int tid = g.nthreads++;
  ThreadRec* c = GetSlot(tid);
  c->name = name != nullptr ? name : "t";
  ++r->clock.v[r->tid];
  c->clock = r->clock;  // spawn happens-before the child's first step
  ++c->clock.v[tid];
  c->fence_rel = VClock{};
  c->acq_pending = VClock{};
  // Coherence-RR carries over a spawn edge: the child may not read
  // anything older than what the parent already read.
  c->floor = r->floor;
  c->fence_export = r->fence_export;
  c->status = TStatus::kRunnable;
  {
    std::lock_guard<std::mutex> lk(g.mx);
    c->work = std::move(fn);
    c->has_work = true;
    c->cv.notify_one();
  }
  Trace(Op::kSpawn, tid, -1, 0, 0);
  return tid;
}

void ModelJoin(int tid) {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active || tid < 0) return;
  SchedulePoint();
  ThreadRec* tgt = g.threads[tid].get();
  if (tgt == nullptr) return;
  while (tgt->status != TStatus::kFinished) {
    if (g.aborted) return;  // unwinding teardown
    BlockSelf(BlockKind::kJoin, tgt, tid);
  }
  r->clock.Join(tgt->clock);
  Trace(Op::kJoin, tid, -1, 0, 0);
}

void ModelYieldSpin() {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active) {
    std::this_thread::yield();
    return;
  }
  std::unique_lock<std::mutex> lk(g.mx);
  if (g.aborted) {
    AbortCheckLocked();
    return;
  }
  r->status = TStatus::kYielded;
  r->fresh_read = false;
  g.control_returned = true;
  g.driver_cv.notify_one();
  r->cv.wait(lk, [r] { return r->go; });
  r->go = false;
  if (g.aborted) AbortCheckLocked();
}

void ModelFailNow(const std::string& what) {
  if (!InModelRun()) {
    fprintf(stderr, "model failure outside run: %s\n", what.c_str());
    std::abort();
  }
  FailNow(what);
}

void ModelAssertFail(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "model assertion failed: " << expr << " @ " << file << ":" << line;
  ModelFailNow(os.str());
}

void ProtocolAssertFail(const char* expr, const char* file, int line) {
  if (!InModelRun()) {
    fprintf(stderr, "protocol assertion failed: %s @ %s:%d\n", expr, file,
            line);
    std::abort();
  }
  std::ostringstream os;
  os << "protocol assertion failed: " << expr << " @ " << file << ":" << line;
  FailNow(os.str());
}

namespace internal {

Location* LocationCreate(uint64_t initial_bits) {
  Location* loc = new Location();
  loc->latest_bits = initial_bits;
  return loc;
}

void LocationDestroy(Location* loc) {
  if (g.active) {
    // Purge the pointer from every floor map: heap reuse could otherwise
    // alias a stale floor onto a future location at the same address.
    g.sc_floor.erase(loc);
    for (auto& slot : g.threads) {
      if (!slot) continue;
      slot->floor.erase(loc);
      slot->fence_export.erase(loc);
    }
  }
  delete loc;
}

uint64_t AtomicLoad(Location* loc, std::memory_order mo) {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active) return loc->latest_bits;
  SchedulePoint();
  EnsureFresh(loc);
  if (g.aborted) return loc->history.back().value;  // direct mode
  size_t floor = FloorOf(r, loc);
  // A store that happened-before this load hides everything older.
  for (size_t k = loc->history.size(); k-- > 0;) {
    if (loc->history[k].snap.LeqOf(r->clock)) {
      if (k > floor) floor = k;
      break;
    }
  }
  if (r->fresh_read) floor = loc->history.size() - 1;
  if (IsSeqCst(mo)) {
    if (loc->last_sc >= 0 && static_cast<size_t>(loc->last_sc) > floor) {
      floor = static_cast<size_t>(loc->last_sc);
    }
    auto it = g.sc_floor.find(loc);
    if (it != g.sc_floor.end() && it->second > floor) floor = it->second;
  }
  const size_t n = loc->history.size();
  size_t idx = floor;
  const size_t count = n - floor;
  if (count > 1) idx = floor + Choose(static_cast<uint32_t>(count));
  const Location::Store& s = loc->history[idx];
  r->floor[loc] = idx;
  if (IsAcquire(mo)) {
    r->clock.Join(s.rel);
  } else {
    r->acq_pending.Join(s.rel);
  }
  Trace(Op::kLoad, loc->ordinal, mo, s.value, idx);
  return s.value;
}

void AtomicStore(Location* loc, uint64_t bits, std::memory_order mo) {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active) {
    loc->latest_bits = bits;
    return;
  }
  SchedulePoint();
  EnsureFresh(loc);
  loc->latest_bits = bits;
  if (g.aborted) {  // direct mode: keep modification order moving
    loc->history.push_back({bits, VClock{}, VClock{}, r->tid});
    return;
  }
  ++r->clock.v[r->tid];
  Location::Store srec;
  srec.value = bits;
  srec.tid = r->tid;
  srec.snap = r->clock;
  srec.rel = IsRelease(mo) ? r->clock : r->fence_rel;
  loc->history.push_back(srec);
  const size_t idx = loc->history.size() - 1;
  r->floor[loc] = idx;
  r->fence_export[loc] = idx;
  if (IsSeqCst(mo)) {
    loc->last_sc = static_cast<int>(idx);
    size_t& f = g.sc_floor[loc];
    if (idx > f) f = idx;
  }
  VisibleWrite();
  Trace(Op::kStore, loc->ordinal, mo, bits, idx);
}

uint64_t AtomicRmw(Location* loc, std::memory_order mo,
                   uint64_t (*fn)(uint64_t, void*), void* ctx) {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active) {
    const uint64_t old = loc->latest_bits;
    loc->latest_bits = fn(old, ctx);
    return old;
  }
  SchedulePoint();
  EnsureFresh(loc);
  // RMW reads the newest store in modification order, always.
  const Location::Store last = loc->history.back();
  const uint64_t old = last.value;
  const uint64_t neu = fn(old, ctx);
  loc->latest_bits = neu;
  if (g.aborted) {
    loc->history.push_back({neu, VClock{}, VClock{}, r->tid});
    return old;
  }
  if (IsAcquire(mo)) {
    r->clock.Join(last.rel);
  } else {
    r->acq_pending.Join(last.rel);
  }
  ++r->clock.v[r->tid];
  Location::Store srec;
  srec.value = neu;
  srec.tid = r->tid;
  srec.snap = r->clock;
  srec.rel = IsRelease(mo) ? r->clock : r->fence_rel;
  srec.rel.Join(last.rel);  // release-sequence continuation
  loc->history.push_back(srec);
  const size_t idx = loc->history.size() - 1;
  r->floor[loc] = idx;
  r->fence_export[loc] = idx;
  if (IsSeqCst(mo)) {
    loc->last_sc = static_cast<int>(idx);
    size_t& f = g.sc_floor[loc];
    if (idx > f) f = idx;
  }
  VisibleWrite();
  Trace(Op::kRmw, loc->ordinal, mo, old, neu);
  return old;
}

bool AtomicCas(Location* loc, uint64_t* expected, uint64_t desired,
               std::memory_order success, std::memory_order failure) {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active) {
    if (loc->latest_bits == *expected) {
      loc->latest_bits = desired;
      return true;
    }
    *expected = loc->latest_bits;
    return false;
  }
  SchedulePoint();
  EnsureFresh(loc);
  const Location::Store last = loc->history.back();
  if (g.aborted) {
    if (last.value == *expected) {
      loc->latest_bits = desired;
      loc->history.push_back({desired, VClock{}, VClock{}, r->tid});
      return true;
    }
    *expected = last.value;
    return false;
  }
  if (last.value != *expected) {
    // Failed CAS is a load of the newest store with the failure order.
    if (IsAcquire(failure)) {
      r->clock.Join(last.rel);
    } else {
      r->acq_pending.Join(last.rel);
    }
    r->floor[loc] = loc->history.size() - 1;
    *expected = last.value;
    Trace(Op::kCasFail, loc->ordinal, failure, last.value, 0);
    return false;
  }
  if (IsAcquire(success)) {
    r->clock.Join(last.rel);
  } else {
    r->acq_pending.Join(last.rel);
  }
  ++r->clock.v[r->tid];
  Location::Store srec;
  srec.value = desired;
  srec.tid = r->tid;
  srec.snap = r->clock;
  srec.rel = IsRelease(success) ? r->clock : r->fence_rel;
  srec.rel.Join(last.rel);
  loc->history.push_back(srec);
  const size_t idx = loc->history.size() - 1;
  loc->latest_bits = desired;
  r->floor[loc] = idx;
  r->fence_export[loc] = idx;
  if (IsSeqCst(success)) {
    loc->last_sc = static_cast<int>(idx);
    size_t& f = g.sc_floor[loc];
    if (idx > f) f = idx;
  }
  VisibleWrite();
  Trace(Op::kCasOk, loc->ordinal, success, *expected, desired);
  return true;
}

void ThreadFence(std::memory_order mo) {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active) {
    std::atomic_thread_fence(mo);
    return;
  }
  SchedulePoint();
  if (g.aborted) return;
  ++r->clock.v[r->tid];
  if (IsAcquire(mo)) r->clock.Join(r->acq_pending);
  if (IsRelease(mo)) r->fence_rel = r->clock;
  if (IsSeqCst(mo)) {
    // The global SC order totally orders seq_cst fences: absorb the
    // per-location visibility floors exported by earlier fences, then
    // export our own stores. This is what makes the store-buffering
    // (Dekker) idiom work: whichever fence comes second sees the other
    // side's store.
    for (const auto& kv : g.sc_floor) {
      size_t& mine = r->floor[kv.first];
      if (kv.second > mine) mine = kv.second;
      size_t& fe = r->fence_export[kv.first];
      if (kv.second > fe) fe = kv.second;
    }
    for (const auto& kv : r->fence_export) {
      size_t& f = g.sc_floor[kv.first];
      if (kv.second > f) f = kv.second;
    }
    // Visibility floors changed: a spinning reader may now see a newer
    // value, so fences count as progress for livelock purposes.
    VisibleWrite();
  }
  Trace(Op::kFence, -1, mo, 0, 0);
}

void RaceRead(RaceState& rs) {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active || g.aborted) return;
  EnsureFresh(rs);
  if (rs.last_writer >= 0 &&
      r->clock.v[rs.last_writer] < rs.write_stamp) {
    std::ostringstream os;
    os << "data race: T" << r->tid << " reads cell #" << rs.ordinal
       << " concurrently with T" << rs.last_writer << "'s write";
    FailNow(os.str());
  }
  ++r->clock.v[r->tid];
  rs.readers.emplace_back(r->tid, r->clock.v[r->tid]);
  Trace(Op::kCellRead, rs.ordinal, -1, 0, 0);
}

void RaceWrite(RaceState& rs) {
  ThreadRec* r = t_self;
  if (r == nullptr || !g.active || g.aborted) return;
  EnsureFresh(rs);
  if (rs.last_writer >= 0 &&
      r->clock.v[rs.last_writer] < rs.write_stamp) {
    std::ostringstream os;
    os << "data race: T" << r->tid << " writes cell #" << rs.ordinal
       << " concurrently with T" << rs.last_writer << "'s write";
    FailNow(os.str());
  }
  for (const auto& rd : rs.readers) {
    if (r->clock.v[rd.first] < rd.second) {
      std::ostringstream os;
      os << "data race: T" << r->tid << " writes cell #" << rs.ordinal
         << " concurrently with T" << rd.first << "'s read";
      FailNow(os.str());
    }
  }
  ++r->clock.v[r->tid];
  rs.last_writer = r->tid;
  rs.write_stamp = r->clock.v[r->tid];
  rs.readers.clear();
  Trace(Op::kCellWrite, rs.ordinal, -1, 0, 0);
}

void MutexLockOp(MutexState& ms) {
  ThreadRec* r = t_self;
  SchedulePoint();
  EnsureFresh(ms);
  if (g.aborted) {
    ms.owner = r->tid;
    return;
  }
  while (ms.owner != -1) {
    BlockSelf(BlockKind::kMutex, &ms, -1);
    if (g.aborted) {
      ms.owner = r->tid;
      return;
    }
  }
  ms.owner = r->tid;
  ++r->clock.v[r->tid];
  r->clock.Join(ms.clock);
  Trace(Op::kLock, ms.ordinal, -1, 0, 0);
}

void MutexUnlockOp(MutexState& ms) {
  ThreadRec* r = t_self;
  SchedulePoint();
  EnsureFresh(ms);
  if (g.aborted) {
    ms.owner = -1;
    return;
  }
  if (ms.owner != r->tid) {
    FailNow("unlock of a mutex the thread does not own");
  }
  ++r->clock.v[r->tid];
  ms.clock = r->clock;
  ms.owner = -1;
  WakeBlockedOn(&ms);
  VisibleWrite();
  Trace(Op::kUnlock, ms.ordinal, -1, 0, 0);
}

void CondWaitOp(CondVarState& cs, MutexState& ms) {
  ThreadRec* r = t_self;
  SchedulePoint();
  EnsureFresh(cs);
  EnsureFresh(ms);
  if (g.aborted) return;
  if (ms.owner != r->tid) {
    FailNow("condvar wait without holding the mutex");
  }
  // Atomically: unlock, park.
  ++r->clock.v[r->tid];
  ms.clock = r->clock;
  ms.owner = -1;
  WakeBlockedOn(&ms);
  VisibleWrite();
  cs.waiters.push_back(r->tid);
  Trace(Op::kCondWait, cs.ordinal, -1, 0, 0);
  BlockSelf(BlockKind::kCondVar, &cs, -1);
  if (g.aborted) return;
  // Notified: re-acquire the mutex.
  while (ms.owner != -1) {
    BlockSelf(BlockKind::kMutex, &ms, -1);
    if (g.aborted) return;
  }
  ms.owner = r->tid;
  ++r->clock.v[r->tid];
  r->clock.Join(ms.clock);
}

void CondNotifyAllOp(CondVarState& cs) {
  ThreadRec* r = t_self;
  SchedulePoint();
  EnsureFresh(cs);
  if (g.aborted) {
    for (int w : cs.waiters) {
      ThreadRec* t = g.threads[w].get();
      if (t != nullptr && t->status == TStatus::kBlocked) {
        t->status = TStatus::kRunnable;
      }
    }
    cs.waiters.clear();
    return;
  }
  ++r->clock.v[r->tid];
  for (int w : cs.waiters) {
    ThreadRec* t = g.threads[w].get();
    if (t != nullptr && t->status == TStatus::kBlocked &&
        t->bkind == BlockKind::kCondVar) {
      t->status = TStatus::kRunnable;
    }
  }
  cs.waiters.clear();
  VisibleWrite();
  Trace(Op::kNotify, cs.ordinal, -1, 0, 0);
}

}  // namespace internal
}  // namespace check
}  // namespace pldp
