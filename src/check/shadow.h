// Copyright 2026 The PLDP Authors.
//
// Shadow synchronization types used when PLDP_MODEL_CHECK is defined:
// drop-in shapes for the subset of std::atomic / std::mutex /
// std::condition_variable the protocol files use, routed through the
// model checker in src/check/model.{h,cc}. Outside an active RunModel
// the shadows degrade to plain (single-threaded) semantics for atomics
// and to real OS primitives for mutex/condvar, so model-check binaries
// can still construct and tear down runtime objects outside a run.
//
// Normal builds never see this header — common/atomic.h aliases
// pldp::Atomic straight to std::atomic there.

#ifndef PLDP_CHECK_SHADOW_H_
#define PLDP_CHECK_SHADOW_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <type_traits>
#include <utility>

#include "check/model.h"

namespace pldp {
namespace check {

// Model-checked stand-in for std::atomic<T>. Every operation is a
// scheduler yield point; relaxed loads may observe stale values (the
// checker branches over every store coherence allows). Orders must be
// named explicitly — there are deliberately no defaulted-order overloads,
// so a migration slip fails to compile under PLDP_MODEL_CHECK even
// before tools/lint_atomics.py flags it.
template <typename T>
class ShadowAtomic {
  static_assert(std::is_trivially_copyable<T>::value,
                "ShadowAtomic requires trivially copyable T");
  static_assert(sizeof(T) <= 8, "ShadowAtomic supports at most 8 bytes");

 public:
  ShadowAtomic() : loc_(internal::LocationCreate(ToBits(T{}))) {}
  explicit ShadowAtomic(T v) : loc_(internal::LocationCreate(ToBits(v))) {}
  ~ShadowAtomic() { internal::LocationDestroy(loc_); }
  ShadowAtomic(const ShadowAtomic&) = delete;
  ShadowAtomic& operator=(const ShadowAtomic&) = delete;

  T load(std::memory_order mo) const {
    return FromBits(internal::AtomicLoad(loc_, mo));
  }
  void store(T v, std::memory_order mo) {
    internal::AtomicStore(loc_, ToBits(v), mo);
  }
  T exchange(T v, std::memory_order mo) {
    const uint64_t arg = ToBits(v);
    return FromBits(internal::AtomicRmw(
        loc_, mo,
        [](uint64_t, void* ctx) { return *static_cast<uint64_t*>(ctx); },
        const_cast<uint64_t*>(&arg)));
  }
  template <typename U = T>
  T fetch_add(U delta, std::memory_order mo) {
    RmwCtx<U> ctx{delta};
    return FromBits(internal::AtomicRmw(
        loc_, mo,
        [](uint64_t old, void* c) {
          return ToBits(static_cast<T>(
              FromBits(old) + static_cast<RmwCtx<U>*>(c)->delta));
        },
        &ctx));
  }
  template <typename U = T>
  T fetch_sub(U delta, std::memory_order mo) {
    RmwCtx<U> ctx{delta};
    return FromBits(internal::AtomicRmw(
        loc_, mo,
        [](uint64_t old, void* c) {
          return ToBits(static_cast<T>(
              FromBits(old) - static_cast<RmwCtx<U>*>(c)->delta));
        },
        &ctx));
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order succ,
                             std::memory_order fail) {
    return CasImpl(expected, desired, succ, fail);
  }
  bool compare_exchange_strong(T& expected, T desired, std::memory_order succ,
                               std::memory_order fail) {
    return CasImpl(expected, desired, succ, fail);
  }

 private:
  template <typename U>
  struct RmwCtx {
    U delta;
  };
  bool CasImpl(T& expected, T desired, std::memory_order succ,
               std::memory_order fail) {
    uint64_t exp = ToBits(expected);
    const bool ok = internal::AtomicCas(loc_, &exp, ToBits(desired), succ,
                                        fail);
    if (!ok) expected = FromBits(exp);
    return ok;
  }
  static uint64_t ToBits(T v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(T));
    return bits;
  }
  static T FromBits(uint64_t bits) {
    T v;
    std::memcpy(&v, &bits, sizeof(T));
    return v;
  }

  internal::Location* loc_;
};

inline void ShadowFence(std::memory_order mo) { internal::ThreadFence(mo); }

// Data-race detector for non-atomic payload cells (queue slots). Reads
// and writes are vector-clock checked against the schedule the checker
// chose: a slot access not ordered by the surrounding atomic protocol is
// reported as a data race, which is how a weakened index store is caught
// even though the index value itself still "looks" right.
template <typename T>
class ShadowRaceCell {
 public:
  ShadowRaceCell() = default;
  explicit ShadowRaceCell(T v) : value_(std::move(v)) {}
  ShadowRaceCell(const ShadowRaceCell&) = delete;
  ShadowRaceCell& operator=(const ShadowRaceCell&) = delete;
  ShadowRaceCell(ShadowRaceCell&& o) : value_(std::move(o.value_)) {}
  ShadowRaceCell& operator=(ShadowRaceCell&& o) {
    internal::RaceWrite(race_);
    value_ = std::move(o.value_);
    return *this;
  }

  ShadowRaceCell& operator=(T&& v) {
    internal::RaceWrite(race_);
    value_ = std::move(v);
    return *this;
  }
  ShadowRaceCell& operator=(const T& v) {
    internal::RaceWrite(race_);
    value_ = v;
    return *this;
  }
  /// Checked move-out (pldp::RaceCellMove routes here in model builds).
  /// A conversion operator would be ambiguous against T's own copy/move
  /// assignment pair, hence the named accessor.
  T&& Take() {
    internal::RaceRead(race_);
    return std::move(value_);
  }
  operator const T&() const& {
    internal::RaceRead(const_cast<internal::RaceState&>(race_));
    return value_;
  }

 private:
  T value_{};
  internal::RaceState race_;
};

// BasicLockable model mutex (works with std::unique_lock /
// std::lock_guard). Inside a run, lock/unlock are schedule points with
// full blocking semantics and clock transfer; outside a run it is a real
// std::mutex.
class ModelMutex {
 public:
  ModelMutex() = default;
  ModelMutex(const ModelMutex&) = delete;
  ModelMutex& operator=(const ModelMutex&) = delete;

  void lock() {
    if (InModelRun()) {
      internal::MutexLockOp(state_);
    } else {
      real_.lock();
    }
  }
  void unlock() {
    if (InModelRun()) {
      internal::MutexUnlockOp(state_);
    } else {
      real_.unlock();
    }
  }

  internal::MutexState& state() { return state_; }

 private:
  internal::MutexState state_;
  std::mutex real_;
};

// Model condition variable over ModelMutex. No spurious wakeups are
// modeled, so callers must use the predicate wait shape (all runtime
// call sites do).
class ModelCondVar {
 public:
  ModelCondVar() = default;
  ModelCondVar(const ModelCondVar&) = delete;
  ModelCondVar& operator=(const ModelCondVar&) = delete;

  void wait(std::unique_lock<ModelMutex>& lk) {
    if (InModelRun()) {
      internal::CondWaitOp(state_, lk.mutex()->state());
    } else {
      real_.wait(lk);
    }
  }
  template <typename Predicate>
  void wait(std::unique_lock<ModelMutex>& lk, Predicate pred) {
    if (InModelRun()) {
      while (!pred()) internal::CondWaitOp(state_, lk.mutex()->state());
    } else {
      real_.wait(lk, std::move(pred));
    }
  }
  void notify_all() {
    if (InModelRun()) {
      internal::CondNotifyAllOp(state_);
    } else {
      real_.notify_all();
    }
  }
  void notify_one() {
    // The model wakes every waiter and lets the scheduler decide who
    // wins the relock race — a sound over-approximation of notify_one.
    if (InModelRun()) {
      internal::CondNotifyAllOp(state_);
    } else {
      real_.notify_one();
    }
  }

 private:
  internal::CondVarState state_;
  std::condition_variable_any real_;
};

}  // namespace check
}  // namespace pldp

#endif  // PLDP_CHECK_SHADOW_H_
